"""Admission control and single-flight request coalescing.

Two small, separately testable pieces the server composes:

* :class:`AdmissionGate` — a bounded in-service counter.  Every compute
  request must acquire a slot before it may queue for a worker; when
  ``limit`` slots are taken the gate raises
  :class:`~repro.serve.errors.OverloadedError` *immediately* instead of
  queueing unboundedly.  (Shedding at the door keeps tail latency
  bounded: a client gets a structured retryable error in microseconds
  rather than a response seconds after its deadline passed.)
* :class:`SingleFlight` — a key → in-flight-task map.  The first
  request for a key becomes the *leader* and starts the compute; every
  concurrent duplicate becomes a *follower* that awaits the leader's
  task.  Followers add zero CPU work, and each waiter applies its own
  deadline via ``asyncio.shield``, so one impatient client cannot
  cancel the shared compute under the others.

Plus :class:`LatencyReservoir`, a bounded sample buffer that turns
per-request latencies into p50/p95/p99 summaries for the metrics stream.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Any, Awaitable, Callable, Dict, List, Optional, Tuple

from .errors import OverloadedError


class AdmissionGate:
    """Bounded concurrent-request gate: admit or reject, never queue."""

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError(f"admission limit must be >= 1, got {limit}")
        self.limit = limit
        self.in_service = 0
        self.admitted = 0
        self.rejected = 0
        self.peak = 0

    def admit(self) -> None:
        if self.in_service >= self.limit:
            self.rejected += 1
            raise OverloadedError(
                f"server at capacity ({self.in_service}/{self.limit} "
                "requests in service); retry with backoff"
            )
        self.in_service += 1
        self.admitted += 1
        self.peak = max(self.peak, self.in_service)

    def release(self) -> None:
        self.in_service = max(0, self.in_service - 1)

    def as_dict(self) -> Dict[str, int]:
        return {
            "limit": self.limit,
            "in_service": self.in_service,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "peak_in_service": self.peak,
        }


@dataclass
class FlightStats:
    """Leader/follower accounting for one server lifetime."""

    leaders: int = 0
    followers: int = 0

    @property
    def coalesce_rate(self) -> float:
        total = self.leaders + self.followers
        return self.followers / total if total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "leaders": self.leaders,
            "followers": self.followers,
            "coalesce_rate": self.coalesce_rate,
        }


class SingleFlight:
    """Coalesce concurrent identical work onto one shared task.

    ``join(key, factory)`` returns ``(task, is_leader)``.  The leader's
    ``factory()`` coroutine runs as an independent task that outlives
    any individual waiter; the entry is dropped once the task settles so
    later requests recompute (or, in the server, hit the artifact store
    the leader populated).
    """

    def __init__(self) -> None:
        self._inflight: Dict[str, "asyncio.Task[Any]"] = {}
        self.stats = FlightStats()

    def join(
        self, key: str, factory: Callable[[], Awaitable[Any]]
    ) -> Tuple["asyncio.Task[Any]", bool]:
        task = self._inflight.get(key)
        if task is not None and not task.done():
            self.stats.followers += 1
            return task, False
        task = asyncio.get_running_loop().create_task(factory())
        self._inflight[key] = task
        task.add_done_callback(lambda _t, _k=key: self._forget(_k, _t))
        self.stats.leaders += 1
        return task, True

    def _forget(self, key: str, task: "asyncio.Task[Any]") -> None:
        if self._inflight.get(key) is task:
            del self._inflight[key]

    def __len__(self) -> int:
        return len(self._inflight)

    async def drain(self) -> None:
        """Wait for every in-flight compute to settle (errors included)."""
        tasks = [t for t in self._inflight.values() if not t.done()]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)


@dataclass
class LatencyReservoir:
    """Bounded latency sample buffer with percentile summaries.

    Keeps the most recent ``cap`` samples (overwrite-oldest), which is
    exact until ``cap`` requests and a sliding window after — fine for
    the service-level p50/p95/p99 the metrics stream reports.
    """

    cap: int = 4096
    count: int = 0
    total_s: float = 0.0
    _samples: List[float] = field(default_factory=list)

    def record(self, latency_s: float) -> None:
        self.count += 1
        self.total_s += latency_s
        if len(self._samples) < self.cap:
            self._samples.append(latency_s)
        else:
            self._samples[self.count % self.cap] = latency_s

    def percentile(self, q: float) -> float:
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        idx = min(len(ordered) - 1, int(q * (len(ordered) - 1) + 0.5))
        return ordered[idx]

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean_s": self.total_s / self.count if self.count else 0.0,
            "p50_s": self.percentile(0.50),
            "p95_s": self.percentile(0.95),
            "p99_s": self.percentile(0.99),
            "max_s": max(self._samples) if self._samples else 0.0,
        }

    def snapshot(self) -> Optional[Dict[str, float]]:
        return self.as_dict() if self.count else None

    def merge(self, other: "LatencyReservoir") -> "LatencyReservoir":
        """Fold ``other``'s samples in (multi-process load reports).

        Counts and totals add exactly; the sample buffer keeps an
        evenly-strided subset when the union exceeds ``cap``, so the
        merged percentiles stay representative of both sides.
        """
        self.count += other.count
        self.total_s += other.total_s
        combined = self._samples + other._samples
        if len(combined) > self.cap:
            step = len(combined) / self.cap
            combined = [combined[int(i * step)] for i in range(self.cap)]
        self._samples = combined
        return self
