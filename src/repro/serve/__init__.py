"""``repro.serve`` — the async overlay-compilation service.

OverGen's usability argument is that a generated overlay turns FPGA
programming into *software* compilation: seconds, not synthesis hours.
This package exposes that fast path as a long-lived, many-client
service: an asyncio server holding pre-built overlays that answers
``map`` / ``estimate`` / ``simulate`` requests over a JSON-lines
protocol with admission control, single-flight request coalescing, a
process worker pool, per-request deadlines, persistent result caching
through :mod:`repro.engine.store`, and a metrics JSONL stream — plus
the bundled client and load generator that drive it.
"""

from .batcher import AdmissionGate, FlightStats, LatencyReservoir, SingleFlight
from .client import (
    LoadReport,
    ServeClient,
    ServeConnectionError,
    build_load_plan,
    run_load,
    run_load_sharded,
    wait_for_server,
)
from .errors import (
    BadRequestError,
    DeadlineError,
    InternalError,
    OverloadedError,
    ServeError,
    ShuttingDownError,
    UnmappableError,
    error_from_doc,
)
from .ops import (
    compute_op,
    estimate_op,
    map_op,
    overlay_fingerprint,
    pack_job,
    remap_op,
    result_key,
    run_job_payload,
    run_op,
    simulate_batch_doc,
    simulate_batch_op,
    simulate_op,
    single_shot,
    unpack_job_result,
    workload_fp,
)
from .protocol import JOB_OPS
from .protocol import (
    ADMIN_OPS,
    ALL_OPS,
    COMPUTE_OPS,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    Request,
    canonical_dumps,
    decode_line,
    encode_line,
    parse_request,
    response_doc,
)
from .server import (
    OverlayEntry,
    OverlayServer,
    ServeConfig,
    serve_until_shutdown,
)

__all__ = [
    "ADMIN_OPS",
    "ALL_OPS",
    "AdmissionGate",
    "BadRequestError",
    "COMPUTE_OPS",
    "DeadlineError",
    "FlightStats",
    "InternalError",
    "JOB_OPS",
    "LatencyReservoir",
    "LoadReport",
    "MAX_LINE_BYTES",
    "OverlayEntry",
    "OverlayServer",
    "OverloadedError",
    "PROTOCOL_VERSION",
    "Request",
    "ServeClient",
    "ServeConfig",
    "ServeConnectionError",
    "ServeError",
    "ShuttingDownError",
    "SingleFlight",
    "UnmappableError",
    "build_load_plan",
    "canonical_dumps",
    "compute_op",
    "decode_line",
    "encode_line",
    "error_from_doc",
    "estimate_op",
    "map_op",
    "overlay_fingerprint",
    "pack_job",
    "parse_request",
    "remap_op",
    "response_doc",
    "result_key",
    "run_job_payload",
    "run_load",
    "run_load_sharded",
    "run_op",
    "serve_until_shutdown",
    "simulate_batch_doc",
    "simulate_batch_op",
    "simulate_op",
    "single_shot",
    "unpack_job_result",
    "wait_for_server",
    "workload_fp",
]
