"""Client for ``repro serve``: one-shot requests and a load generator.

:class:`ServeClient` speaks the JSON-lines protocol over a unix socket
or TCP, pipelining any number of concurrent requests on one connection
(responses are matched back by request id).

:func:`run_load` is the bundled load generator: it fires ``requests``
total requests at ``concurrency`` in flight, cycling through an op ×
workload mix.  Because the mix repeats, concurrent requests are
frequently identical — exactly the traffic shape single-flight
coalescing exists for — and the report cross-checks the server's
``stats`` op to assert that compiles < requests.  Every response body is
also verified byte-identical (canonical JSON) across duplicates of the
same (op, workload) pair.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .batcher import LatencyReservoir
from .errors import ServeError, error_from_doc
from .protocol import canonical_dumps, decode_line, encode_line


class ServeConnectionError(ConnectionError):
    """The server endpoint cannot be reached or died mid-request."""


class ServeClient:
    """Asyncio JSON-lines client with id-based response matching."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pending: Dict[str, "asyncio.Future[Dict[str, Any]]"] = {}
        self._ids = itertools.count(1)
        self._reader_task: Optional["asyncio.Task[None]"] = None
        self._write_lock: Optional[asyncio.Lock] = None

    async def __aenter__(self) -> "ServeClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    async def connect(self) -> None:
        try:
            if self.socket_path:
                self._reader, self._writer = await asyncio.open_unix_connection(
                    self.socket_path
                )
            else:
                self._reader, self._writer = await asyncio.open_connection(
                    self.host, self.port
                )
        except (ConnectionError, OSError) as exc:
            endpoint = self.socket_path or f"{self.host}:{self.port}"
            raise ServeConnectionError(
                f"cannot connect to repro serve at {endpoint}: {exc}"
            ) from exc
        self._write_lock = asyncio.Lock()
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
        self._fail_pending(ServeConnectionError("connection closed"))

    def _fail_pending(self, exc: Exception) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                doc = decode_line(line)
                future = self._pending.pop(str(doc.get("id")), None)
                if future is not None and not future.done():
                    future.set_result(doc)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._fail_pending(
                ServeConnectionError(f"read loop failed: {exc}")
            )
            return
        self._fail_pending(ServeConnectionError("server closed connection"))

    # -- request API ----------------------------------------------------
    async def request_raw(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request document; return the raw response document."""
        assert self._writer is not None and self._write_lock is not None, (
            "client is not connected"
        )
        req_id = doc.get("id") or f"c{next(self._ids)}"
        doc = {**doc, "id": req_id}
        future: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[req_id] = future
        async with self._write_lock:
            self._writer.write(encode_line(doc))
            await self._writer.drain()
        return await future

    async def request(
        self,
        op: str,
        workload: Optional[str] = None,
        overlay: Optional[str] = None,
        timeout_s: Optional[float] = None,
    ) -> Dict[str, Any]:
        """One request; returns the ``result`` doc or raises the typed error."""
        doc: Dict[str, Any] = {"op": op}
        if workload is not None:
            doc["workload"] = workload
        if overlay is not None:
            doc["overlay"] = overlay
        if timeout_s is not None:
            doc["timeout_s"] = timeout_s
        response = await self.request_raw(doc)
        if not response.get("ok"):
            raise error_from_doc(response.get("error"))
        return response["result"]

    async def ping(self) -> Dict[str, Any]:
        return await self.request("ping")

    async def stats(self) -> Dict[str, Any]:
        return await self.request("stats")

    async def shutdown(self) -> Dict[str, Any]:
        return await self.request("shutdown")


async def wait_for_server(
    client_factory, attempts: int = 50, delay_s: float = 0.1
) -> None:
    """Poll until a fresh client can ping the server (startup race)."""
    last: Optional[Exception] = None
    for _ in range(attempts):
        try:
            async with client_factory() as client:
                await client.ping()
                return
        except (ServeConnectionError, OSError) as exc:
            last = exc
            await asyncio.sleep(delay_s)
    raise ServeConnectionError(f"server never came up: {last}")


# ----------------------------------------------------------------------
# Load generation
# ----------------------------------------------------------------------
@dataclass
class LoadReport:
    """Outcome of one load run; renders and asserts the ISSUE criteria."""

    requests: int = 0
    ok: int = 0
    errors: int = 0
    error_codes: Dict[str, int] = field(default_factory=dict)
    wall_s: float = 0.0
    latency: LatencyReservoir = field(default_factory=LatencyReservoir)
    #: canonical result bytes per (op, workload) — duplicates must match.
    results: Dict[Tuple[str, str], str] = field(default_factory=dict)
    mismatches: List[str] = field(default_factory=list)
    server_stats: Optional[Dict[str, Any]] = None

    @property
    def throughput(self) -> float:
        return self.requests / self.wall_s if self.wall_s else 0.0

    @property
    def computes(self) -> Optional[int]:
        if self.server_stats is None:
            return None
        return self.server_stats["counters"].get("computes")

    def as_dict(self) -> Dict[str, Any]:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "errors": self.errors,
            "error_codes": dict(sorted(self.error_codes.items())),
            "wall_s": self.wall_s,
            "throughput_rps": self.throughput,
            "latency": self.latency.as_dict(),
            "mismatches": self.mismatches,
            "computes": self.computes,
        }

    def render(self) -> str:
        lat = self.latency.as_dict()
        lines = [
            f"load: {self.requests} requests in {self.wall_s:.2f}s "
            f"({self.throughput:.0f} req/s), {self.ok} ok / "
            f"{self.errors} errors",
            f"latency: p50 {lat['p50_s'] * 1e3:.1f} ms, "
            f"p95 {lat['p95_s'] * 1e3:.1f} ms, "
            f"p99 {lat['p99_s'] * 1e3:.1f} ms, "
            f"max {lat['max_s'] * 1e3:.1f} ms",
        ]
        if self.error_codes:
            codes = ", ".join(
                f"{code}={n}" for code, n in sorted(self.error_codes.items())
            )
            lines.append(f"error codes: {codes}")
        if self.server_stats is not None:
            c = self.server_stats["counters"]
            f_ = self.server_stats["flights"]
            lines.append(
                f"server: {c['computes']} compiles for {self.requests} "
                f"requests (coalesced {c['coalesced']}, memory hits "
                f"{c['cache_memory']}, disk hits {c['cache_disk']}, "
                f"coalesce rate {f_['coalesce_rate']:.0%})"
            )
        if self.mismatches:
            lines.append(f"RESULT MISMATCHES: {self.mismatches}")
        return "\n".join(lines)


async def run_load(
    client_factory,
    ops: Sequence[str] = ("map", "estimate", "simulate"),
    workloads: Sequence[str] = ("vecmax",),
    requests: int = 64,
    concurrency: int = 16,
    overlay: Optional[str] = None,
    timeout_s: Optional[float] = None,
    expect_errors: bool = False,
    fetch_stats: bool = True,
) -> LoadReport:
    """Fire a mixed, duplicate-heavy request stream; collect a report.

    ``client_factory`` returns an unconnected :class:`ServeClient`; the
    generator opens ``concurrency`` connections and drives them in
    parallel, cycling the op × workload product so identical requests
    overlap in flight.
    """
    report = LoadReport()
    mix = [(op, wl) for wl in workloads for op in ops]
    plan = [mix[i % len(mix)] for i in range(requests)]
    queue: "asyncio.Queue[Tuple[str, str]]" = asyncio.Queue()
    for item in plan:
        queue.put_nowait(item)
    lock = asyncio.Lock()

    async def worker() -> None:
        async with client_factory() as client:
            while True:
                try:
                    op, wl = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                t0 = perf_counter()
                try:
                    result = await client.request(
                        op, workload=wl, overlay=overlay, timeout_s=timeout_s
                    )
                except ServeError as exc:
                    async with lock:
                        report.errors += 1
                        report.error_codes[exc.code] = (
                            report.error_codes.get(exc.code, 0) + 1
                        )
                    continue
                finally:
                    latency = perf_counter() - t0
                    async with lock:
                        report.requests += 1
                        report.latency.record(latency)
                blob = canonical_dumps(result)
                async with lock:
                    report.ok += 1
                    seen = report.results.setdefault((op, wl), blob)
                    if seen != blob:
                        report.mismatches.append(
                            f"{op}/{wl}: divergent duplicate result"
                        )

    t_start = perf_counter()
    await asyncio.gather(*(worker() for _ in range(max(1, concurrency))))
    report.wall_s = perf_counter() - t_start
    # errors counted requests too; reconcile to total attempted
    report.requests = report.ok + report.errors
    if fetch_stats:
        async with client_factory() as client:
            report.server_stats = await client.stats()
    if not expect_errors and report.errors:
        codes = ", ".join(sorted(report.error_codes))
        raise ServeError(
            f"load run hit {report.errors} errors ({codes}); see report"
        )
    return report
