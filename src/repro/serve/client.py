"""Client for ``repro serve``: one-shot requests and a load generator.

:class:`ServeClient` speaks the JSON-lines protocol over a unix socket
or TCP, pipelining any number of concurrent requests on one connection
(responses are matched back by request id).

:func:`run_load` is the bundled load generator: it fires ``requests``
total requests at ``concurrency`` in flight, cycling through an op ×
workload mix.  Because the mix repeats, concurrent requests are
frequently identical — exactly the traffic shape single-flight
coalescing exists for — and the report cross-checks the server's
``stats`` op to assert that compiles < requests.  Every response body is
also verified byte-identical (canonical JSON) across duplicates of the
same (op, workload) pair.
"""

from __future__ import annotations

import asyncio
import itertools
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .batcher import LatencyReservoir
from .errors import ServeError, error_from_doc
from .protocol import canonical_dumps, decode_line, encode_line


class ServeConnectionError(ConnectionError):
    """The server endpoint cannot be reached or died mid-request."""


class ServeClient:
    """Asyncio JSON-lines client with id-based response matching."""

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._pending: Dict[str, "asyncio.Future[Dict[str, Any]]"] = {}
        self._ids = itertools.count(1)
        self._reader_task: Optional["asyncio.Task[None]"] = None
        self._write_lock: Optional[asyncio.Lock] = None

    async def __aenter__(self) -> "ServeClient":
        await self.connect()
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    async def connect(self) -> None:
        try:
            if self.socket_path:
                self._reader, self._writer = await asyncio.open_unix_connection(
                    self.socket_path
                )
            else:
                self._reader, self._writer = await asyncio.open_connection(
                    self.host, self.port
                )
        except (ConnectionError, OSError) as exc:
            endpoint = self.socket_path or f"{self.host}:{self.port}"
            raise ServeConnectionError(
                f"cannot connect to repro serve at {endpoint}: {exc}"
            ) from exc
        self._write_lock = asyncio.Lock()
        self._reader_task = asyncio.get_running_loop().create_task(
            self._read_loop()
        )

    async def close(self) -> None:
        if self._reader_task is not None:
            self._reader_task.cancel()
            try:
                await self._reader_task
            except (asyncio.CancelledError, Exception):
                pass
            self._reader_task = None
        if self._writer is not None:
            try:
                self._writer.close()
                await self._writer.wait_closed()
            except (ConnectionError, OSError):
                pass
            self._writer = None
        self._fail_pending(ServeConnectionError("connection closed"))

    def _fail_pending(self, exc: Exception) -> None:
        for future in self._pending.values():
            if not future.done():
                future.set_exception(exc)
        self._pending.clear()

    async def _read_loop(self) -> None:
        assert self._reader is not None
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    break
                doc = decode_line(line)
                future = self._pending.pop(str(doc.get("id")), None)
                if future is not None and not future.done():
                    future.set_result(doc)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            self._fail_pending(
                ServeConnectionError(f"read loop failed: {exc}")
            )
            return
        self._fail_pending(ServeConnectionError("server closed connection"))

    # -- request API ----------------------------------------------------
    async def request_raw(self, doc: Dict[str, Any]) -> Dict[str, Any]:
        """Send one request document; return the raw response document."""
        assert self._writer is not None and self._write_lock is not None, (
            "client is not connected"
        )
        req_id = doc.get("id") or f"c{next(self._ids)}"
        doc = {**doc, "id": req_id}
        future: "asyncio.Future[Dict[str, Any]]" = (
            asyncio.get_running_loop().create_future()
        )
        self._pending[req_id] = future
        async with self._write_lock:
            self._writer.write(encode_line(doc))
            await self._writer.drain()
        return await future

    async def request(
        self,
        op: str,
        workload: Optional[str] = None,
        overlay: Optional[str] = None,
        timeout_s: Optional[float] = None,
        options: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """One request; returns the ``result`` doc or raises the typed error."""
        doc: Dict[str, Any] = {"op": op}
        if workload is not None:
            doc["workload"] = workload
        if overlay is not None:
            doc["overlay"] = overlay
        if timeout_s is not None:
            doc["timeout_s"] = timeout_s
        if options:
            doc["options"] = options
        response = await self.request_raw(doc)
        if not response.get("ok"):
            raise error_from_doc(response.get("error"))
        return response["result"]

    async def ping(self) -> Dict[str, Any]:
        return await self.request("ping")

    async def stats(self) -> Dict[str, Any]:
        return await self.request("stats")

    async def shutdown(self) -> Dict[str, Any]:
        return await self.request("shutdown")


async def wait_for_server(
    client_factory, attempts: int = 50, delay_s: float = 0.1
) -> None:
    """Poll until a fresh client can ping the server (startup race)."""
    last: Optional[Exception] = None
    for _ in range(attempts):
        try:
            async with client_factory() as client:
                await client.ping()
                return
        except (ServeConnectionError, OSError) as exc:
            last = exc
            await asyncio.sleep(delay_s)
    raise ServeConnectionError(f"server never came up: {last}")


# ----------------------------------------------------------------------
# Load generation
# ----------------------------------------------------------------------
@dataclass
class LoadReport:
    """Outcome of one load run; renders and asserts the ISSUE criteria."""

    requests: int = 0
    ok: int = 0
    errors: int = 0
    error_codes: Dict[str, int] = field(default_factory=dict)
    wall_s: float = 0.0
    latency: LatencyReservoir = field(default_factory=LatencyReservoir)
    #: canonical result bytes per (op, workload, overlay) — duplicates
    #: must match, across connections, processes, and shard counts.
    results: Dict[Tuple[str, str, str], str] = field(default_factory=dict)
    mismatches: List[str] = field(default_factory=list)
    server_stats: Optional[Dict[str, Any]] = None
    #: per routed shard: request count + latency (cluster-direct mode).
    shard_requests: Dict[int, int] = field(default_factory=dict)
    shard_latency: Dict[int, LatencyReservoir] = field(default_factory=dict)

    @property
    def throughput(self) -> float:
        return self.requests / self.wall_s if self.wall_s else 0.0

    @property
    def computes(self) -> Optional[int]:
        if self.server_stats is None:
            return None
        counters = self.server_stats.get("counters") or {}
        if "computes" in counters:
            return counters.get("computes")
        aggregate = self.server_stats.get("aggregate") or {}
        return (aggregate.get("counters") or {}).get("computes")

    @property
    def balance(self) -> Optional[float]:
        """Busiest shard over the mean (1.0 = perfectly even routing)."""
        if not self.shard_requests:
            return None
        mean = sum(self.shard_requests.values()) / len(self.shard_requests)
        return max(self.shard_requests.values()) / mean if mean else None

    def record(self, latency_s: float, shard: Optional[int]) -> None:
        self.requests += 1
        self.latency.record(latency_s)
        if shard is not None:
            self.shard_requests[shard] = (
                self.shard_requests.get(shard, 0) + 1
            )
            self.shard_latency.setdefault(
                shard, LatencyReservoir()
            ).record(latency_s)

    def merge(self, other: "LoadReport") -> "LoadReport":
        """Fold in another process's report (sharded load generation).

        Result bytes are cross-checked across reports: the same
        (op, workload, overlay) key must have produced identical
        canonical JSON in every generator process.
        """
        self.ok += other.ok
        self.errors += other.errors
        self.requests = self.ok + self.errors
        for code, n in other.error_codes.items():
            self.error_codes[code] = self.error_codes.get(code, 0) + n
        self.wall_s = max(self.wall_s, other.wall_s)
        self.latency.merge(other.latency)
        self.mismatches.extend(other.mismatches)
        for key, blob in other.results.items():
            seen = self.results.setdefault(key, blob)
            if seen != blob:
                self.mismatches.append(
                    f"{'/'.join(k for k in key if k)}: divergent result "
                    "across load shards"
                )
        for shard, n in other.shard_requests.items():
            self.shard_requests[shard] = (
                self.shard_requests.get(shard, 0) + n
            )
        for shard, reservoir in other.shard_latency.items():
            self.shard_latency.setdefault(
                shard, LatencyReservoir()
            ).merge(reservoir)
        if self.server_stats is None:
            self.server_stats = other.server_stats
        return self

    def as_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "requests": self.requests,
            "ok": self.ok,
            "errors": self.errors,
            "error_codes": dict(sorted(self.error_codes.items())),
            "wall_s": self.wall_s,
            "throughput_rps": self.throughput,
            "latency": self.latency.as_dict(),
            "mismatches": self.mismatches,
            "computes": self.computes,
        }
        if self.shard_requests:
            doc["per_shard"] = {
                str(shard): {
                    "requests": self.shard_requests[shard],
                    **self.shard_latency[shard].as_dict(),
                }
                for shard in sorted(self.shard_requests)
            }
            doc["balance"] = self.balance
        return doc

    def render(self) -> str:
        lat = self.latency.as_dict()
        lines = [
            f"load: {self.requests} requests in {self.wall_s:.2f}s "
            f"({self.throughput:.0f} req/s), {self.ok} ok / "
            f"{self.errors} errors",
            f"latency: p50 {lat['p50_s'] * 1e3:.1f} ms, "
            f"p95 {lat['p95_s'] * 1e3:.1f} ms, "
            f"p99 {lat['p99_s'] * 1e3:.1f} ms, "
            f"max {lat['max_s'] * 1e3:.1f} ms",
        ]
        if self.error_codes:
            codes = ", ".join(
                f"{code}={n}" for code, n in sorted(self.error_codes.items())
            )
            lines.append(f"error codes: {codes}")
        for shard in sorted(self.shard_requests):
            s_lat = self.shard_latency[shard].as_dict()
            lines.append(
                f"shard {shard}: {self.shard_requests[shard]} requests, "
                f"p50 {s_lat['p50_s'] * 1e3:.1f} ms, "
                f"p95 {s_lat['p95_s'] * 1e3:.1f} ms, "
                f"p99 {s_lat['p99_s'] * 1e3:.1f} ms"
            )
        if self.balance is not None:
            lines.append(
                f"routing balance: busiest shard at "
                f"{self.balance:.2f}x the mean"
            )
        if self.server_stats is not None:
            counters = self.server_stats.get("counters") or {}
            if "computes" in counters:
                f_ = self.server_stats["flights"]
                lines.append(
                    f"server: {counters['computes']} compiles for "
                    f"{self.requests} requests (coalesced "
                    f"{counters['coalesced']}, memory hits "
                    f"{counters['cache_memory']}, disk hits "
                    f"{counters['cache_disk']}, coalesce rate "
                    f"{f_['coalesce_rate']:.0%})"
                )
            else:  # router stats: aggregate over shards
                agg = (self.server_stats.get("aggregate") or {}).get(
                    "counters"
                ) or {}
                lines.append(
                    f"cluster: {agg.get('computes', 0)} compiles for "
                    f"{self.requests} requests across "
                    f"{len(self.server_stats.get('shards') or [])} shards "
                    f"(coalesced {agg.get('coalesced', 0)}, memory hits "
                    f"{agg.get('cache_memory', 0)}, remap preserved "
                    f"{agg.get('remap_preserved', 0)})"
                )
        if self.mismatches:
            lines.append(f"RESULT MISMATCHES: {self.mismatches}")
        return "\n".join(lines)


def build_load_plan(
    ops: Sequence[str],
    workloads: Sequence[str],
    overlays: Sequence[Optional[str]],
    requests: int,
) -> List[Tuple[str, str, Optional[str]]]:
    """The deterministic request plan every load generator shares.

    A pure function of its arguments, so N generator processes can each
    take a contiguous :class:`~repro.jobs.ShardPlan` slice of the same
    plan and the union is exactly the 1-process run.
    """
    mix = [
        (op, wl, ov)
        for ov in (overlays or [None])
        for wl in workloads
        for op in ops
    ]
    return [mix[i % len(mix)] for i in range(requests)]


async def run_load(
    client_factory,
    ops: Sequence[str] = ("map", "estimate", "simulate"),
    workloads: Sequence[str] = ("vecmax",),
    requests: int = 64,
    concurrency: int = 16,
    overlay: Optional[str] = None,
    overlays: Optional[Sequence[str]] = None,
    timeout_s: Optional[float] = None,
    expect_errors: bool = False,
    fetch_stats: bool = True,
    cluster: bool = False,
    plan: Optional[Sequence[Tuple[str, str, Optional[str]]]] = None,
) -> LoadReport:
    """Fire a mixed, duplicate-heavy request stream; collect a report.

    ``client_factory`` returns an unconnected :class:`ServeClient`; the
    generator opens ``concurrency`` connections and drives them in
    parallel, cycling the op × workload × overlay product so identical
    requests overlap in flight.

    With ``cluster=True`` the generator first fetches the ``topology``
    op from the endpoint and then routes each request *directly* to the
    owning shard using the same slot hash + ShardPlan math the router
    uses — per-shard latency and routing balance land in the report,
    and the front tier never touches the data path.
    """
    report = LoadReport()
    if plan is None:
        plan = build_load_plan(
            ops, workloads, overlays or [overlay], requests
        )
    queue: "asyncio.Queue[Tuple[str, str, Optional[str]]]" = asyncio.Queue()
    for item in plan:
        queue.put_nowait(item)
    lock = asyncio.Lock()

    topology = None
    if cluster:
        from ..cluster.topology import Topology

        async with client_factory() as client:
            topology = Topology.from_doc(await client.request("topology"))
        if not topology.shards:
            raise ServeError("endpoint advertised an empty topology")

    _wfp_cache: Dict[str, str] = {}

    def shard_for(op: str, wl: str, ov: Optional[str]) -> Optional[int]:
        if topology is None:
            return None
        from ..cluster.registry import split_spec
        from .ops import workload_fp

        if ov is None:
            overlay_key = ""
        elif op == "remap":
            # remap routes on the registry base name: every version of
            # a family must land where the prior schedule lives.
            overlay_key = split_spec(ov)[0]
        else:
            overlay_key = topology.overlays.get(ov, ov)
        cached = _wfp_cache.get(wl)
        if cached is None:
            cached = _wfp_cache[wl] = workload_fp(wl)
        return topology.shard_for(overlay_key, cached).index

    def make_client(shard: Optional[int]) -> ServeClient:
        if shard is None or topology is None:
            return client_factory()
        spec = next(
            s for s in topology.shards if s.index == shard
        )
        return ServeClient(
            socket_path=spec.socket_path, host=spec.host, port=spec.port
        )

    async def worker() -> None:
        clients: Dict[Optional[int], ServeClient] = {}

        async def client_for(shard: Optional[int]) -> ServeClient:
            client = clients.get(shard)
            if client is None:
                client = clients[shard] = make_client(shard)
                await client.connect()
            return client

        try:
            while True:
                try:
                    op, wl, ov = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                shard = shard_for(op, wl, ov)
                t0 = perf_counter()
                try:
                    client = await client_for(shard)
                    result = await client.request(
                        op, workload=wl, overlay=ov, timeout_s=timeout_s
                    )
                except ServeError as exc:
                    async with lock:
                        report.errors += 1
                        report.error_codes[exc.code] = (
                            report.error_codes.get(exc.code, 0) + 1
                        )
                    continue
                finally:
                    latency = perf_counter() - t0
                    async with lock:
                        report.record(latency, shard)
                blob = canonical_dumps(result)
                key = (op, wl, ov or "")
                async with lock:
                    report.ok += 1
                    seen = report.results.setdefault(key, blob)
                    if seen != blob:
                        report.mismatches.append(
                            f"{op}/{wl}: divergent duplicate result"
                        )
        finally:
            for client in clients.values():
                try:
                    await client.close()
                except Exception:
                    pass

    t_start = perf_counter()
    await asyncio.gather(*(worker() for _ in range(max(1, concurrency))))
    report.wall_s = perf_counter() - t_start
    # errors counted requests too; reconcile to total attempted
    report.requests = report.ok + report.errors
    if fetch_stats:
        async with client_factory() as client:
            report.server_stats = await client.stats()
    if not expect_errors and report.errors:
        codes = ", ".join(sorted(report.error_codes))
        raise ServeError(
            f"load run hit {report.errors} errors ({codes}); see report"
        )
    return report


def _load_shard_worker(config: Dict[str, Any]) -> LoadReport:
    """One load-generator process: run its slice of the shared plan."""
    factory = lambda: ServeClient(  # noqa: E731 - trivial local factory
        socket_path=config.get("socket"),
        host=config.get("host", "127.0.0.1"),
        port=config.get("port", 0),
    )
    return asyncio.run(
        run_load(
            factory,
            requests=len(config["plan"]),
            concurrency=config["concurrency"],
            timeout_s=config.get("timeout_s"),
            expect_errors=True,  # merged report applies the policy once
            fetch_stats=False,
            cluster=config.get("cluster", False),
            plan=[tuple(item) for item in config["plan"]],
        )
    )


def run_load_sharded(
    endpoint: Dict[str, Any],
    ops: Sequence[str],
    workloads: Sequence[str],
    requests: int,
    concurrency: int,
    load_shards: int,
    overlays: Optional[Sequence[str]] = None,
    timeout_s: Optional[float] = None,
    expect_errors: bool = False,
    cluster: bool = False,
) -> LoadReport:
    """Drive the load from ``load_shards`` generator processes.

    One asyncio loop tops out far below what a multi-shard cluster can
    serve, so the generator itself must scale out to measure it.  The
    deterministic plan is built once, split contiguously with
    :class:`~repro.jobs.ShardPlan`, and each process runs its slice;
    reports merge with cross-process byte-identity checks.
    """
    from ..jobs import ProcessPoolJobExecutor, ShardPlan

    plan = build_load_plan(ops, workloads, overlays or [None], requests)
    slices = ShardPlan(total=len(plan), shards=load_shards).slices()
    configs = [
        {
            **endpoint,
            "plan": plan[s.start:s.stop],
            "concurrency": max(1, concurrency // max(1, len(slices))),
            "timeout_s": timeout_s,
            "cluster": cluster,
        }
        for s in slices
        if s.count
    ]
    executor = ProcessPoolJobExecutor(workers=len(configs))
    merged = LoadReport()
    for outcome in executor.execute(
        _load_shard_worker, list(enumerate(configs))
    ):
        if not outcome.ok:
            raise ServeError(
                f"load generator shard {outcome.index} failed: "
                f"{outcome.error}"
            )
        merged.merge(outcome.result)
    if not expect_errors and merged.errors:
        codes = ", ".join(sorted(merged.error_codes))
        raise ServeError(
            f"load run hit {merged.errors} errors ({codes}); see report"
        )
    return merged
