"""The asyncio overlay-compilation server.

``OverlayServer`` holds one or more pre-built overlays (a ``SysADG``
plus its content fingerprint) and serves ``map`` / ``estimate`` /
``simulate`` requests over the JSON-lines protocol, on a unix socket or
localhost TCP.  The serving pipeline per compute request:

1. **Parse + resolve** — protocol validation, overlay lookup, workload
   fingerprint (cached per name); failures answer ``bad_request``.
2. **Admission** — a bounded :class:`~repro.serve.batcher.AdmissionGate`
   slot must be free or the request is rejected *now* with a structured
   ``overloaded`` error (load-shedding, never unbounded queueing).
3. **Coalescing** — requests are keyed by ``(overlay fingerprint,
   workload fingerprint, op)``; concurrent identical requests join a
   single in-flight compute via
   :class:`~repro.serve.batcher.SingleFlight`.
4. **Cache tiers** — in-process memory map, then the persistent
   :class:`~repro.engine.store.ArtifactStore` (shared with the DSE
   engine, so results survive restarts), then a worker-pool process
   from :func:`repro.jobs.make_worker_pool` running
   :func:`repro.serve.ops.compute_op` (thread-pool fallback when the
   sandbox forbids subprocesses).
5. **Deadline** — each waiter applies its own ``timeout_s`` via
   ``asyncio.wait_for(asyncio.shield(task))``; expiry answers a
   ``deadline`` error while the shared compute keeps running and lands
   in the cache for the retry.
6. **Metrics + spans** — every request emits a ``request`` event into a
   :class:`~repro.engine.metrics.MetricsLogger` JSONL stream (queue
   depth, cache tier, coalesced flag, latency) under
   ``profile.tracer`` spans (``serve.request`` / ``serve.compute``);
   drain emits a ``serve_summary`` with coalesce/admission/latency
   percentiles.

Shutdown is graceful: a ``shutdown`` op (or signal, wired by the CLI)
stops the listeners, rejects new compute work with ``shutting_down``,
waits for in-flight requests up to ``drain_timeout_s``, then resolves
:meth:`OverlayServer.wait_closed`.
"""

from __future__ import annotations

import asyncio
import os
from concurrent.futures import Executor
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from ..adg import SysADG, load_sysadg, sysadg_from_dict, sysadg_to_dict
from ..cluster.registry import OverlayRegistry, RegistryError
from ..engine.metrics import MetricsLogger
from ..engine.store import ArtifactStore
from ..jobs import make_worker_pool
from ..profile import tracer
from .batcher import AdmissionGate, LatencyReservoir, SingleFlight
from .errors import (
    BadRequestError,
    DeadlineError,
    InternalError,
    ServeError,
    ShuttingDownError,
)
from .ops import (
    compute_op,
    overlay_fingerprint,
    remap_compute,
    result_key,
    run_job_payload,
    workload_fp,
)
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    Request,
    decode_line,
    encode_line,
    parse_request,
    response_doc,
)


@dataclass
class ServeConfig:
    """Everything the server needs to listen and bound itself."""

    socket_path: Optional[str] = None
    host: str = "127.0.0.1"
    port: int = 0
    #: Max compute requests in service (queued + executing) before
    #: admission control sheds load with ``overloaded``.
    queue_limit: int = 64
    #: Worker processes for CPU-bound compiles; 0 means "in-process
    #: threads" (used by tests and as the sandbox fallback).
    workers: int = 2
    #: Deadline applied when a request carries no ``timeout_s``.
    default_timeout_s: float = 30.0
    #: How long graceful drain waits for in-flight requests.
    drain_timeout_s: float = 30.0
    #: Artifact-store directory for served results (None disables).
    cache_dir: Optional[str] = None
    #: Store root holding a versioned overlay registry; when set,
    #: requests may address overlays by ``name``/``name@vN`` specs that
    #: are resolved and cached on first use (None disables).
    registry_dir: Optional[str] = None


@dataclass
class OverlayEntry:
    """One loaded design, ready to serve."""

    name: str
    sysadg: SysADG
    design_doc: Dict[str, Any] = field(repr=False, default_factory=dict)
    fingerprint: str = ""
    #: Registry name this entry is a version of ("" for direct loads).
    #: ``remap`` keys its schedule continuity on the base name, so a
    #: new version of the same name inherits the prior schedule.
    base_name: str = ""


class OverlayServer:
    """Long-lived compile service over pre-built overlays."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        metrics: Optional[MetricsLogger] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.metrics = metrics if metrics is not None else MetricsLogger()
        self.overlays: Dict[str, OverlayEntry] = {}
        self.gate = AdmissionGate(self.config.queue_limit)
        self.flights = SingleFlight()
        self.latency = LatencyReservoir()
        self.counters: Dict[str, int] = {
            "requests": 0,
            "responses_ok": 0,
            "responses_error": 0,
            "computes": 0,
            "cache_memory": 0,
            "cache_disk": 0,
            "coalesced": 0,
            "jobs": 0,
            "registry_loads": 0,
            "remap_preserved": 0,
            "remap_recompiled": 0,
            "remap_cold": 0,
        }
        self.store: Optional[ArtifactStore] = (
            ArtifactStore(self.config.cache_dir)
            if self.config.cache_dir
            else None
        )
        self.registry: Optional[OverlayRegistry] = (
            OverlayRegistry(self.config.registry_dir)
            if self.config.registry_dir
            else None
        )
        self._memory: Dict[str, Tuple[str, Dict[str, Any]]] = {}
        self._workload_fps: Dict[str, str] = {}
        #: (base name, workload fp) -> (overlay fp, schedule): the live
        #: schedule ``remap`` tries to preserve across overlay versions.
        self._schedules: Dict[Tuple[str, str], Tuple[str, Any]] = {}
        #: result key -> how the last remap compute resolved
        #: (preserved / recompiled / cold), reported in ``served``.
        self._remap_paths: Dict[str, str] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[Executor] = None
        self._executor_kind = "none"
        self._draining = False
        self._closed: Optional[asyncio.Event] = None
        self._conn_tasks: "set[asyncio.Task[Any]]" = set()
        self._writers: "set[asyncio.StreamWriter]" = set()
        self.endpoint: Optional[Tuple[str, Any]] = None

    # -- overlay registry ----------------------------------------------
    def add_overlay(self, sysadg: SysADG, name: Optional[str] = None) -> str:
        """Register a design; returns the name it is served under."""
        name = name or sysadg.name
        self.overlays[name] = OverlayEntry(
            name=name,
            sysadg=sysadg,
            design_doc=sysadg_to_dict(sysadg),
            fingerprint=overlay_fingerprint(sysadg),
        )
        return name

    def load_design(self, path: str, name: Optional[str] = None) -> str:
        return self.add_overlay(load_sysadg(path), name=name)

    def _resolve_overlay(self, name: Optional[str]) -> OverlayEntry:
        if name is None:
            if len(self.overlays) == 1:
                return next(iter(self.overlays.values()))
            raise BadRequestError(
                f"server holds {len(self.overlays)} overlays "
                f"({', '.join(sorted(self.overlays)) or 'none'}); "
                "request must name one"
            )
        entry = self.overlays.get(name)
        if entry is not None:
            return entry
        if self.registry is not None:
            return self._resolve_from_registry(name)
        raise BadRequestError(
            f"unknown overlay {name!r}; loaded: "
            f"{', '.join(sorted(self.overlays)) or 'none'}"
        )

    def _resolve_from_registry(self, spec: str) -> OverlayEntry:
        """Resolve ``name``/``name@vN`` through the registry, caching the
        built design under its explicit ``name@vN`` spec (so bare names
        re-resolve each time and track pin moves, while version loads
        pay the deserialization once)."""
        try:
            version = self.registry.lookup(spec)
        except RegistryError as exc:
            raise BadRequestError(
                f"unknown overlay {spec!r}; loaded: "
                f"{', '.join(sorted(self.overlays)) or 'none'}; "
                f"registry: {exc}"
            ) from exc
        cached = self.overlays.get(version.spec)
        if cached is not None:
            return cached
        try:
            resolved = self.registry.resolve(version.spec)
            sysadg = sysadg_from_dict(resolved.design_doc)
        except RegistryError as exc:
            raise InternalError(str(exc)) from exc
        except Exception as exc:
            raise InternalError(
                f"registry design {version.spec} failed to deserialize: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        entry = OverlayEntry(
            name=version.spec,
            sysadg=sysadg,
            design_doc=resolved.design_doc,
            fingerprint=overlay_fingerprint(sysadg),
            base_name=version.name,
        )
        self.overlays[version.spec] = entry
        self.counters["registry_loads"] += 1
        self.metrics.emit(
            "registry_load",
            spec=version.spec,
            fingerprint=entry.fingerprint,
        )
        return entry

    def _workload_fp(self, name: str) -> str:
        fp = self._workload_fps.get(name)
        if fp is None:
            fp = self._workload_fps[name] = workload_fp(name)
        return fp

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> None:
        if not self.overlays and self.registry is None:
            raise ValueError(
                "cannot start a server with no overlays loaded and no "
                "registry to resolve them from"
            )
        self._closed = asyncio.Event()
        self._make_executor()
        cfg = self.config
        if cfg.socket_path:
            if os.path.exists(cfg.socket_path):
                os.unlink(cfg.socket_path)
            self._server = await asyncio.start_unix_server(
                self._handle_connection,
                path=cfg.socket_path,
                limit=MAX_LINE_BYTES,
            )
            self.endpoint = ("unix", cfg.socket_path)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                host=cfg.host,
                port=cfg.port,
                limit=MAX_LINE_BYTES,
            )
            sock = self._server.sockets[0]
            self.endpoint = ("tcp", sock.getsockname()[:2])
        self.metrics.emit(
            "serve_start",
            protocol=PROTOCOL_VERSION,
            endpoint=list(self.endpoint),
            overlays={n: e.fingerprint for n, e in self.overlays.items()},
            queue_limit=cfg.queue_limit,
            workers=cfg.workers,
            executor=self._executor_kind,
            cache_dir=cfg.cache_dir,
        )

    def _make_executor(self) -> None:
        self._executor, self._executor_kind = make_worker_pool(
            self.config.workers,
            on_fallback=lambda workers: self.metrics.emit(
                "pool_unavailable", workers=workers
            ),
            thread_name_prefix="serve-compute",
        )

    async def wait_closed(self) -> None:
        """Resolve once a drain (shutdown op or :meth:`shutdown`) ends."""
        assert self._closed is not None, "server not started"
        await self._closed.wait()

    async def shutdown(self) -> None:
        """Graceful drain: stop listening, finish in-flight, close."""
        if self._closed is None or self._closed.is_set():
            return
        if self._draining:
            await self._closed.wait()
            return
        self._draining = True
        if self._server is not None:
            # close() only — on 3.12+ wait_closed() also waits for every
            # connection handler, which deadlocks against clients holding
            # their connection open while they await the drain.
            self._server.close()
        pending = [t for t in self._conn_tasks if not t.done()]
        if pending:
            done, late = await asyncio.wait(
                pending, timeout=self.config.drain_timeout_s
            )
            for task in late:
                task.cancel()
        await asyncio.wait_for(
            self.flights.drain(), timeout=self.config.drain_timeout_s
        )
        # Close lingering client transports so their handler coroutines
        # exit through EOF rather than being cancelled at loop teardown.
        for writer in list(self._writers):
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
        self.metrics.emit("serve_summary", **self.stats_doc())
        if self.config.socket_path and os.path.exists(self.config.socket_path):
            os.unlink(self.config.socket_path)
        self._closed.set()

    # -- connection handling -------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        write_lock = asyncio.Lock()
        request_tasks: "set[asyncio.Task[Any]]" = set()
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, asyncio.LimitOverrunError):
                    await self._write(
                        writer,
                        write_lock,
                        response_doc(
                            "?",
                            error=BadRequestError(
                                f"request line exceeds {MAX_LINE_BYTES} bytes"
                            ).to_doc(),
                        ),
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.get_running_loop().create_task(
                    self._serve_line(line, writer, write_lock)
                )
                request_tasks.add(task)
                self._conn_tasks.add(task)
                task.add_done_callback(request_tasks.discard)
                task.add_done_callback(self._conn_tasks.discard)
            if request_tasks:
                await asyncio.gather(*request_tasks, return_exceptions=True)
        except asyncio.CancelledError:
            # Exit quietly: asyncio owns this task, and on 3.11 its
            # StreamReaderProtocol done-callback calls task.exception()
            # on a cancelled handler, logging a spurious "Exception in
            # callback" traceback per connection if we propagate.
            pass
        finally:
            self._writers.discard(writer)
            # close() without awaiting wait_closed(): this task may be
            # cancelled at loop teardown, and an await here would surface
            # as a spurious CancelledError in asyncio's protocol callback.
            try:
                writer.close()
            except (ConnectionError, OSError):
                pass

    async def _write(
        self,
        writer: asyncio.StreamWriter,
        lock: asyncio.Lock,
        doc: Dict[str, Any],
    ) -> None:
        async with lock:
            writer.write(encode_line(doc))
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass

    async def _serve_line(
        self,
        line: bytes,
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        req_id = "?"
        try:
            doc = decode_line(line)
            req_id = str(doc.get("id", "?"))
            request = parse_request(doc)
            response = await self._dispatch(request)
        except ServeError as exc:
            self.counters["responses_error"] += 1
            response = response_doc(req_id, error=exc.to_doc())
        except Exception as exc:  # never kill the connection loop
            self.counters["responses_error"] += 1
            response = response_doc(
                req_id, error=InternalError(f"{type(exc).__name__}: {exc}").to_doc()
            )
        await self._write(writer, write_lock, response)

    # -- request dispatch ----------------------------------------------
    async def _dispatch(self, request: Request) -> Dict[str, Any]:
        self.counters["requests"] += 1
        if request.op == "ping":
            return response_doc(
                request.id,
                result={"pong": True, "protocol": PROTOCOL_VERSION},
            )
        if request.op == "stats":
            return response_doc(request.id, result=self.stats_doc())
        if request.op == "shutdown":
            # Answer first, then drain in the background so the reply
            # reaches the client before the connection dies.
            asyncio.get_running_loop().create_task(self.shutdown())
            return response_doc(request.id, result={"draining": True})
        if request.op == "topology":
            return response_doc(request.id, result=self.topology_doc())
        if request.op == "load_overlay":
            return response_doc(
                request.id, result=self._op_load_overlay(request)
            )
        if request.op == "job":
            return await self._dispatch_job(request)
        return await self._dispatch_compute(request)

    async def _dispatch_compute(self, request: Request) -> Dict[str, Any]:
        t_arrival = perf_counter()
        if self._draining:
            raise ShuttingDownError("server is draining; no new work")
        entry = self._resolve_overlay(request.overlay)
        assert request.workload is not None  # parse_request enforced it
        key = result_key(
            entry.fingerprint, self._workload_fp(request.workload), request.op
        )
        timeout = request.timeout_s or self.config.default_timeout_s
        self.gate.admit()
        try:
            with tracer.span(
                "serve.request", op=request.op, workload=request.workload
            ):
                task, is_leader = self.flights.join(
                    key, lambda: self._compute(key, entry, request)
                )
                if not is_leader:
                    self.counters["coalesced"] += 1
                try:
                    payload, tier, queue_wait = await asyncio.wait_for(
                        asyncio.shield(task), timeout=timeout
                    )
                except asyncio.TimeoutError:
                    raise DeadlineError(
                        f"deadline of {timeout:.3f}s expired for "
                        f"{request.op}/{request.workload} "
                        "(compute continues; retry will hit the cache)"
                    ) from None
        finally:
            self.gate.release()
        latency = perf_counter() - t_arrival
        self.latency.record(latency)
        served = {
            "cache": tier,
            "coalesced": not is_leader,
            "latency_s": latency,
            "queue_wait_s": queue_wait if is_leader else latency,
        }
        if request.op == "remap":
            # How the schedule was obtained lives out-of-band: result
            # documents stay byte-identical across serving histories.
            served["remap"] = self._remap_paths.get(key, "cache")
        kind, payload_doc = payload
        self.metrics.emit(
            "request",
            op=request.op,
            overlay=entry.name,
            workload=request.workload,
            ok=kind == "ok",
            cache=tier,
            coalesced=not is_leader,
            latency_s=latency,
            in_service=self.gate.in_service,
        )
        if kind == "error":
            self.counters["responses_error"] += 1
            return response_doc(request.id, error=payload_doc, served=served)
        self.counters["responses_ok"] += 1
        return response_doc(request.id, result=payload_doc, served=served)

    async def _compute(
        self, key: str, entry: OverlayEntry, request: Request
    ) -> Tuple[Tuple[str, Dict[str, Any]], str, float]:
        """Leader body: memory tier → store tier → worker pool."""
        t_start = perf_counter()
        cached = self._memory.get(key)
        if cached is not None:
            self.counters["cache_memory"] += 1
            return cached, "memory", 0.0
        # remap results depend on server-side schedule history, so they
        # are memoized in memory only, never in the shared disk store.
        if self.store is not None and request.op != "remap":
            stored = self.store.get(key)
            if stored is not None:
                self.counters["cache_disk"] += 1
                self._memory[key] = ("ok", stored)
                return ("ok", stored), "disk", 0.0
        loop = asyncio.get_running_loop()
        assert self._executor is not None, "server not started"
        with tracer.span(
            "serve.compute", op=request.op, workload=request.workload
        ):
            self.counters["computes"] += 1
            queue_wait = perf_counter() - t_start
            try:
                if request.op == "remap":
                    base = entry.base_name or entry.name
                    sched_key = (base, self._workload_fp(request.workload))
                    prior = self._schedules.get(sched_key)
                    doc, path, schedule = await loop.run_in_executor(
                        self._executor,
                        remap_compute,
                        entry.design_doc,
                        request.workload,
                        prior[1] if prior is not None else None,
                    )
                    self._schedules[sched_key] = (entry.fingerprint, schedule)
                    self._remap_paths[key] = path
                    self.counters[f"remap_{path}"] += 1
                else:
                    doc = await loop.run_in_executor(
                        self._executor,
                        compute_op,
                        request.op,
                        entry.design_doc,
                        request.workload,
                    )
            except ServeError as exc:
                # Deterministic negative answers (unmappable, bad
                # workload) coalesce and memoize like positive ones.
                outcome = ("error", exc.to_doc())
                self._memory[key] = outcome
                return outcome, "compute", queue_wait
        self._memory[key] = ("ok", doc)
        if self.store is not None and request.op != "remap":
            self.store.put(
                key,
                doc,
                meta={
                    "kind": "serve_result",
                    "op": request.op,
                    "overlay": entry.name,
                    "overlay_fp": entry.fingerprint,
                    "workload": request.workload,
                },
            )
        return ("ok", doc), "compute", queue_wait

    async def _dispatch_job(self, request: Request) -> Dict[str, Any]:
        """Run an opaque pickled closure on the worker pool.

        Jobs are neither coalesced nor cached (two identical payloads
        may close over different state), but they share the admission
        gate and deadline machinery with compute ops, so a shard under
        compile load sheds job work the same way.
        """
        t_arrival = perf_counter()
        if self._draining:
            raise ShuttingDownError("server is draining; no new work")
        payload = request.options["payload"]  # parse_request enforced it
        timeout = request.timeout_s or self.config.default_timeout_s
        self.gate.admit()
        try:
            with tracer.span("serve.job"):
                loop = asyncio.get_running_loop()
                assert self._executor is not None, "server not started"
                try:
                    out = await asyncio.wait_for(
                        loop.run_in_executor(
                            self._executor, run_job_payload, payload
                        ),
                        timeout=timeout,
                    )
                except asyncio.TimeoutError:
                    raise DeadlineError(
                        f"deadline of {timeout:.3f}s expired for job"
                    ) from None
                except ServeError:
                    raise
                except Exception as exc:
                    raise InternalError(
                        f"job failed: {type(exc).__name__}: {exc}"
                    ) from exc
        finally:
            self.gate.release()
        latency = perf_counter() - t_arrival
        self.latency.record(latency)
        self.counters["jobs"] += 1
        self.counters["responses_ok"] += 1
        self.metrics.emit(
            "request",
            op="job",
            ok=True,
            latency_s=latency,
            in_service=self.gate.in_service,
        )
        return response_doc(
            request.id,
            result={"op": "job", "payload": out},
            served={
                "cache": "none",
                "coalesced": False,
                "latency_s": latency,
                "queue_wait_s": 0.0,
            },
        )

    def _op_load_overlay(self, request: Request) -> Dict[str, Any]:
        """Admin op: pull a design into the serving set.

        ``options.ref`` resolves a registry spec (``name``/``name@vN``);
        ``options.design`` ships an inline design document, optionally
        served under ``options.name``.  The router uses ``ref`` to warm
        every shard after a publish.
        """
        ref = request.options.get("ref")
        design = request.options.get("design")
        if ref is not None:
            if not isinstance(ref, str) or not ref:
                raise BadRequestError(
                    "'options.ref' must be a non-empty string"
                )
            entry = self._resolve_overlay(ref)
        elif design is not None:
            if not isinstance(design, dict):
                raise BadRequestError(
                    "'options.design' must be a design document object"
                )
            try:
                sysadg = sysadg_from_dict(design)
            except Exception as exc:
                raise BadRequestError(
                    f"bad design document: {type(exc).__name__}: {exc}"
                ) from exc
            name = request.options.get("name")
            if name is not None and (
                not isinstance(name, str) or not name
            ):
                raise BadRequestError(
                    "'options.name' must be a non-empty string"
                )
            served_as = self.add_overlay(sysadg, name=name)
            entry = self.overlays[served_as]
        else:
            raise BadRequestError(
                "load_overlay requires 'options.ref' (registry spec) "
                "or 'options.design' (inline design document)"
            )
        return {
            "overlay": entry.name,
            "fingerprint": entry.fingerprint,
            "base": entry.base_name or entry.name,
        }

    # -- introspection --------------------------------------------------
    def topology_doc(self) -> Dict[str, Any]:
        """This server as a (single-shard) cluster map.

        The router overrides this with the real multi-shard topology;
        a bare shard answering for itself keeps the client code path
        uniform (``--cluster`` against one server degrades gracefully).
        """
        from ..cluster.topology import BackendSpec, Topology

        kind, addr = self.endpoint if self.endpoint else ("none", None)
        if kind == "unix":
            spec = BackendSpec(index=0, socket_path=addr)
        elif kind == "tcp":
            spec = BackendSpec(index=0, host=addr[0], port=addr[1])
        else:
            spec = BackendSpec(index=0)
        topology = Topology(
            shards=[spec],
            overlays={
                n: e.fingerprint for n, e in self.overlays.items()
            },
        )
        doc = topology.as_doc()
        doc["role"] = "shard"
        return doc

    def stats_doc(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "protocol": PROTOCOL_VERSION,
            "overlays": sorted(self.overlays),
            "overlay_fps": {
                n: e.fingerprint
                for n, e in sorted(self.overlays.items())
            },
            "executor": self._executor_kind,
            "draining": self._draining,
            "counters": dict(self.counters),
            "admission": self.gate.as_dict(),
            "flights": self.flights.stats.as_dict(),
            "latency": self.latency.as_dict(),
            "schedules": len(self._schedules),
        }
        if self.store is not None:
            doc["store"] = self.store.stats.as_dict()
        if self.registry is not None:
            doc["registry"] = {
                "root": str(self.registry.store.root),
                "names": self.registry.names(),
            }
        return doc


async def serve_until_shutdown(
    server: OverlayServer, signals: Optional[List[int]] = None
) -> None:
    """Start, install signal-driven drain, and block until closed."""
    import signal as _signal

    await server.start()
    loop = asyncio.get_running_loop()
    installed: List[int] = []
    for sig in signals or [_signal.SIGINT, _signal.SIGTERM]:
        try:
            loop.add_signal_handler(
                sig, lambda: loop.create_task(server.shutdown())
            )
            installed.append(sig)
        except (NotImplementedError, RuntimeError, ValueError):
            pass
    try:
        await server.wait_closed()
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)
