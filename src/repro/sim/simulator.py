"""Tile/system simulation of a scheduled mDFG on an overlay.

`simulate_schedule` builds one tile's worth of engines/ports/fabric from a
:class:`~repro.scheduler.Schedule`, shares L2/NoC/DRAM bandwidth pools with
the other (homogeneous) tiles, and steps cycles until the region drains.
Because every tile runs the same kernel on its slice of the outer parallel
loop, one simulated tile against 1/N of the shared bandwidth reproduces the
full-system behavior at a fraction of the cost.

Modeling notes (substitutions documented in DESIGN.md):

* Scratchpad-resident arrays are assumed double-buffered, with fills
  overlapped — steady-state behavior, as in the paper's kernels.
* Recurrence input ports start primed (the initial values are architected
  to arrive before the hot loop).
* Long regions are simulated exactly for a warm-up + measurement window
  and extrapolated at the measured steady-state rate; `exact=True` forces
  a full run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..adg import ADG, NodeKind, SysADG
from ..dfg import (
    ComputeNode,
    InputPortNode,
    MDFG,
    OutputPortNode,
    StreamKind,
    StreamNode,
)
from ..ir import op_latency
from ..profile.tracer import add_counter, span
from ..scheduler import Schedule
from .components import (
    BandwidthPool,
    EngineSim,
    FabricConfig,
    FabricSim,
    PortFifo,
    StreamState,
)

#: Dispatcher pipeline: parameter config + dispatch (Section VI-B).
DISPATCH_LATENCY = 2

#: Port FIFO depth in vector lines (elements = depth x port lanes).
PORT_FIFO_LINES = 8


@dataclass
class SimResult:
    """Outcome of simulating one workload region on the overlay."""

    workload: str
    variant: str
    cycles: float
    instructions: float
    tiles_used: int
    extrapolated: bool
    #: cycles actually stepped by the event loop (== cycles - config
    #: reload when not extrapolated); the denominator of cycles/sec rates.
    stepped_cycles: int = 0
    engine_busy: Dict[str, int] = field(default_factory=dict)
    pool_bytes: Dict[str, float] = field(default_factory=dict)
    fabric_stalls: int = 0

    @property
    def ipc(self) -> float:
        """Whole-FPGA achieved IPC (all tiles)."""
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    def seconds(self, frequency_mhz: float) -> float:
        return self.cycles / (frequency_mhz * 1e6)


class SimulationError(RuntimeError):
    """Raised when the simulated system deadlocks or cannot be built."""


def critical_path_depth(mdfg: MDFG, schedule: Schedule) -> int:
    """Pipeline depth: longest (route hops + op latency) path to an output."""
    depth: Dict[int, int] = {}

    def node_depth(nid: int) -> int:
        if nid in depth:
            return depth[nid]
        node = mdfg.node(nid)
        best = 0
        for edge_key, path in schedule.routes.items():
            src, dst, _slot = edge_key
            if dst == nid:
                best = max(best, node_depth(src) + len(path) - 1)
        if isinstance(node, ComputeNode):
            best += op_latency(node.op, node.dtype.is_float)
        depth[nid] = best
        return best

    outs = [p.node_id for p in mdfg.output_ports]
    if not outs:
        return 4
    return max(4, max(node_depth(o) for o in outs))


def _stream_elements_per_firing(mdfg: MDFG, stream: StreamNode) -> float:
    """Engine-supplied elements of this stream per fabric firing.

    Stationary values are held and replayed by the port FIFO, so the engine
    only transfers one element per ``held`` firings (Section IV-B).
    """
    firings = mdfg.iterations / mdfg.unroll
    if firings <= 0:
        return 0.0
    held = max(1.0, stream.stationary_reuse / max(1, mdfg.unroll))
    return stream.traffic / held / firings


def build_tile(
    schedule: Schedule,
    sysadg: SysADG,
    tiles_used: int,
    onehot_bypass: bool = True,
) -> Tuple[List[EngineSim], FabricSim, List[BandwidthPool]]:
    """Construct one tile's simulation from a schedule."""
    mdfg = schedule.mdfg
    adg = sysadg.adg
    params = sysadg.params

    # Shared bandwidth: each tile sees its NoC link and a 1/N share of the
    # L2 banks and DRAM channels.
    l2_share = min(
        float(params.noc_bytes_per_cycle),
        params.l2_bank_bandwidth * params.l2_banks / tiles_used,
    )
    l2_pool = BandwidthPool("l2", l2_share)
    dram_pool = BandwidthPool(
        "dram", params.dram_bytes_per_cycle / tiles_used
    )

    firings_total = mdfg.iterations / mdfg.unroll / tiles_used

    # Port FIFOs.
    fifos: Dict[int, PortFifo] = {}
    for port_node in mdfg.input_ports + mdfg.output_ports:
        hw_id = schedule.placement.get(port_node.node_id)
        if hw_id is None:
            raise SimulationError(f"port {port_node.node_id} unplaced")
        lanes = max(
            1.0, port_node.width_bytes / mdfg.dtype.bytes
        )
        fifos[port_node.node_id] = PortFifo(
            name=f"port{port_node.node_id}",
            capacity=lanes * PORT_FIFO_LINES,
        )

    # Engines.
    engines: Dict[int, EngineSim] = {}

    def engine_for(hw_id: int) -> EngineSim:
        if hw_id in engines:
            return engines[hw_id]
        hw = adg.node(hw_id)
        if hw.kind is NodeKind.SPAD:
            bw = float(hw.read_bandwidth + hw.write_bandwidth) / 2
            pools: Tuple[BandwidthPool, ...] = ()
        elif hw.kind is NodeKind.DMA:
            bw = float(hw.bandwidth_bytes)
            pools = (l2_pool, dram_pool)
        elif hw.kind is NodeKind.RECURRENCE:
            bw = float(hw.bandwidth_bytes)
            pools = ()
        elif hw.kind is NodeKind.GENERATE:
            bw = float(hw.bandwidth_bytes)
            pools = ()
        else:  # register engine
            bw = 8.0
            pools = ()
        engines[hw_id] = EngineSim(
            name=hw.name,
            bandwidth_bytes=bw,
            pools=pools,
            onehot_bypass=onehot_bypass,
        )
        return engines[hw_id]

    # Streams.
    dispatch_order = 0
    rec_handled: set = set()
    for stream in sorted(mdfg.streams, key=lambda s: s.node_id):
        engine_id = schedule.placement.get(stream.node_id)
        if engine_id is None:
            raise SimulationError(f"stream {stream.node_id} unbound")
        hw = adg.node(engine_id)
        port_fifo = fifos[stream.port]
        eps = _stream_elements_per_firing(mdfg, stream)
        total = eps * firings_total
        if total <= 0:
            continue
        if stream.kind is StreamKind.RECURRENCE:
            if stream.node_id in rec_handled:
                continue
            pair = mdfg.node(stream.recurrent_pair)
            out_stream = (
                stream
                if isinstance(mdfg.node(stream.port), OutputPortNode)
                else pair
            )
            in_stream = pair if out_stream is stream else stream
            out_fifo = fifos[out_stream.port]
            in_fifo = fifos[in_stream.port]
            # The recurrence engine's buffer extends the in-port FIFO: the
            # recurring working set (Fig. 5's "32 concurrent instances")
            # lives in buffer + FIFO + pipeline while it cycles.
            in_fifo.capacity += hw.buffer_bytes / stream.dtype.bytes
            # Prime the recurrence input with its initial values.
            in_fifo.level = in_fifo.capacity
            state = StreamState(
                name=f"rec{stream.node_id}",
                total_elements=total,
                elements_per_cycle_cap=out_fifo.capacity,
                port=out_fifo,
                is_read=False,
                element_bytes=stream.dtype.bytes,
                dispatched_at=DISPATCH_LATENCY + dispatch_order,
            )
            state.forward_to = in_fifo  # type: ignore[attr-defined]
            engine_for(engine_id).add_stream(state)
            rec_handled.add(stream.node_id)
            rec_handled.add(pair.node_id)
            dispatch_order += 1
            continue
        is_read = not isinstance(mdfg.node(stream.port), OutputPortNode)
        l2_frac = 0.0
        dram_frac = 0.0
        if hw.kind is NodeKind.DMA:
            l2_frac = stream.stride_overfetch
            array = next(
                (a for a in mdfg.arrays if a.array == stream.array), None
            )
            footprint_bytes = stream.footprint * stream.dtype.bytes
            if array is None or not array.partitionable:
                footprint_bytes *= tiles_used
            fits_l2 = footprint_bytes <= params.l2_bytes
            if fits_l2:
                reuse = array.memory_reuse if array else 1.0
                dram_frac = stream.stride_overfetch / max(1.0, reuse)
            else:
                dram_frac = stream.stride_overfetch
        hw_port = adg.node(schedule.placement[stream.port])
        cap_elems = hw_port.width_bytes / stream.dtype.bytes
        engine_for(engine_id).add_stream(
            StreamState(
                name=f"s{stream.node_id}",
                total_elements=total,
                elements_per_cycle_cap=cap_elems,
                port=port_fifo,
                is_read=is_read,
                element_bytes=stream.dtype.bytes,
                l2_fraction=l2_frac,
                dram_fraction=dram_frac,
                dispatched_at=DISPATCH_LATENCY + dispatch_order,
            )
        )
        dispatch_order += 1

    # Fabric configuration.
    inputs = []
    for port_node in mdfg.input_ports:
        streams = [s for s in mdfg.streams if s.port == port_node.node_id]
        eps = sum(_stream_elements_per_firing(mdfg, s) for s in streams)
        inputs.append((fifos[port_node.node_id], eps))
    outputs = []
    for port_node in mdfg.output_ports:
        streams = [s for s in mdfg.streams if s.port == port_node.node_id]
        eps = sum(_stream_elements_per_firing(mdfg, s) for s in streams)
        outputs.append((fifos[port_node.node_id], eps))
    fabric = FabricSim(
        FabricConfig(
            inputs=inputs,
            outputs=outputs,
            total_firings=firings_total,
            pipeline_depth=critical_path_depth(mdfg, schedule),
            insts_per_firing=mdfg.insts_per_cycle,
        )
    )
    return list(engines.values()), fabric, [l2_pool, dram_pool]


def _resolve_core(core: Optional[str]) -> str:
    """Pick the stepping core: explicit arg > $REPRO_SIM_CORE > auto."""
    import os

    name = core or os.environ.get("REPRO_SIM_CORE") or "auto"
    if name not in ("auto", "vector", "object"):
        raise SimulationError(
            f"unknown simulator core {name!r}; expected "
            "'auto', 'vector', or 'object'"
        )
    return name


def simulate_schedule(
    schedule: Schedule,
    sysadg: SysADG,
    onehot_bypass: bool = True,
    exact: bool = False,
    max_exact_cycles: int = 200_000,
    measure_window: int = 4_000,
    core: Optional[str] = None,
) -> SimResult:
    """Simulate one scheduled region on the overlay; returns cycles/IPC.

    ``core`` selects the stepping implementation: ``"object"`` is the
    reference per-cycle Python model, ``"vector"`` the packed-array
    compiled core (bit-identical cycle counts, 10-100x faster), and
    ``"auto"`` (default, also via ``$REPRO_SIM_CORE``) uses the vector
    core when a C compiler is available and falls back to objects.
    """
    mdfg = schedule.mdfg
    params = sysadg.params
    core_name = _resolve_core(core)
    if not exact and max_exact_cycles <= 1:
        raise SimulationError(
            f"{mdfg.workload}/{mdfg.variant}: max_exact_cycles="
            f"{max_exact_cycles} leaves no room to measure a steady-state "
            "rate (need at least 2 cycles)"
        )
    if not exact and measure_window >= max_exact_cycles:
        # The steady-state window must open before the exact-cycle cap, or
        # the extrapolation rate would be measured from cycle 0 and include
        # the dispatch/config warm-up transient.  Clamp the window start to
        # half the cap: the first half absorbs warm-up, the second half is
        # the measurement.
        measure_window = max(1, max_exact_cycles // 2)
    tiles_used = max(1, min(params.num_tiles, int(mdfg.tile_parallelism)))
    engines, fabric, pools = build_tile(
        schedule, sysadg, tiles_used, onehot_bypass=onehot_bypass
    )

    config_cycles = mdfg.config_words  # 1 word/cycle reconfiguration reload
    now = 0
    window_start_firings = 0.0
    window_start_cycle = 0
    extrapolated = False
    last_progress_cycle = 0
    last_firings = -1.0

    hard_cap = max_exact_cycles if not exact else 1 << 62
    use_vector = False
    if core_name in ("auto", "vector"):
        from .vector import (
            pack_tile,
            run_packed_region,
            vector_core_available,
        )

        pack = None
        if vector_core_available():
            pack = pack_tile(engines, fabric, pools)
        use_vector = pack is not None
        if not use_vector and core_name == "vector":
            from .ckernel import load_error

            reason = (
                load_error() or "tile shape outside the packed model"
            )
            raise SimulationError(
                f"{mdfg.workload}/{mdfg.variant}: vector core "
                f"unavailable ({reason}); use core='auto' or 'object'"
            )
    with span("sim.region", workload=mdfg.workload, variant=mdfg.variant):
        if use_vector:
            out = run_packed_region(pack, exact, hard_cap, measure_window)
            if out is None:  # compiler vanished between probe and run
                use_vector = False
            else:
                if out.deadlocked:
                    raise SimulationError(
                        f"{mdfg.workload}/{mdfg.variant}: no progress "
                        f"for 20k cycles at cycle {out.now} "
                        f"(firings={fabric.firings:.1f}/"
                        f"{fabric.config.total_firings:.1f})"
                    )
                if out.stuck:
                    # The object loop would spin forever here (fabric
                    # drained, write streams starved, no future event);
                    # the vector core surfaces it instead of hanging.
                    raise SimulationError(
                        f"{mdfg.workload}/{mdfg.variant}: stalled with "
                        f"drained fabric and no future event at cycle "
                        f"{out.now}"
                    )
                now = out.now
                extrapolated = out.hard_capped
                window_start_firings = out.window_firings
                window_start_cycle = out.window_cycle
        while not use_vector:
            if fabric.done:
                # Residual read elements (rounding of stationary hold
                # factors) are terminated with the region: streams end when
                # their consumer configuration completes.
                for engine in engines:
                    for stream in engine.streams:
                        if stream.is_read and not stream.done:
                            stream.moved = stream.total_elements
            if fabric.done and all(e.done for e in engines):
                break
            if not exact and now >= hard_cap:
                extrapolated = True
                break
            for pool in pools:
                pool.refill()
            for engine in engines:
                engine.step(now)
            fabric.step(now)
            if fabric.firings != last_firings:
                last_firings = fabric.firings
                last_progress_cycle = now
            if now - last_progress_cycle > 20_000 and not fabric.done:
                raise SimulationError(
                    f"{mdfg.workload}/{mdfg.variant}: no progress for 20k "
                    f"cycles at cycle {now} (firings={fabric.firings:.1f}/"
                    f"{fabric.config.total_firings:.1f})"
                )
            now += 1
            if now == measure_window:
                window_start_firings = fabric.firings
                window_start_cycle = now
    add_counter("sim.regions")
    add_counter("sim.cycles_stepped", now)

    if extrapolated:
        rate = (fabric.firings - window_start_firings) / max(
            1, now - window_start_cycle
        )
        if rate <= 0:
            raise SimulationError(
                f"{mdfg.workload}/{mdfg.variant}: zero steady-state rate"
            )
        remaining = fabric.config.total_firings - fabric.firings
        total_cycles = now + remaining / rate
    else:
        total_cycles = float(now)

    total_cycles += config_cycles
    instructions = mdfg.total_instructions
    return SimResult(
        workload=mdfg.workload,
        variant=mdfg.variant,
        cycles=total_cycles,
        instructions=instructions,
        tiles_used=tiles_used,
        extrapolated=extrapolated,
        stepped_cycles=now,
        engine_busy={e.name: e.busy_cycles for e in engines},
        pool_bytes={p.name: p.consumed_total for p in pools},
        fabric_stalls=fabric.stall_cycles,
    )
