"""Cycle-level simulator components.

These model the microarchitecture of Section VI at stream/port/firing
granularity: the stream dispatcher (stream table + scoreboard, 2-cycle
dispatch), stream engines (fully-pipelined issue with the one-hot bypass of
Fig. 11, bandwidth-limited transfers, shared-memory arbitration), vector
port FIFOs, and the dedicated-dataflow fabric (II=1 firings gated on
operand availability and output space).

Quantities move as fractional elements ("fluid" below one element per
cycle) which keeps per-cycle arbitration exact for the rates that matter
while avoiding per-element event queues.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class PortFifo:
    """A vector-port FIFO, measured in elements."""

    name: str
    capacity: float
    level: float = 0.0

    @property
    def free(self) -> float:
        return max(0.0, self.capacity - self.level)

    def push(self, amount: float) -> float:
        taken = min(amount, self.free)
        self.level += taken
        return taken

    def pop(self, amount: float) -> float:
        taken = min(amount, self.level)
        self.level -= taken
        return taken


@dataclass
class StreamState:
    """One in-flight stream on an engine.

    Attributes:
        total_elements: elements this stream must move over the region.
        elements_per_cycle_cap: engine-side transfer width for this stream
            (bandwidth / element size, in elements).
        port: destination (read) or source (write) FIFO.
        is_read: direction — reads fill the port, writes drain it.
        l2_fraction / dram_fraction: share of each transferred element that
            consumes L2/NoC and DRAM bandwidth (0 for scratchpad streams).
        element_bytes: size of one element in bytes.
    """

    name: str
    total_elements: float
    elements_per_cycle_cap: float
    port: PortFifo
    is_read: bool
    element_bytes: float
    l2_fraction: float = 0.0
    dram_fraction: float = 0.0
    dispatched_at: int = 0
    moved: float = 0.0

    @property
    def remaining(self) -> float:
        return max(0.0, self.total_elements - self.moved)

    @property
    def done(self) -> bool:
        # Relative tolerance: fractional transfers accumulate float error.
        return self.remaining <= 1e-6 * max(1.0, self.total_elements)


@dataclass
class BandwidthPool:
    """A shared per-cycle byte budget (L2 banks, NoC link, DRAM channels)."""

    name: str
    bytes_per_cycle: float
    available: float = 0.0
    consumed_total: float = 0.0

    def refill(self) -> None:
        self.available = self.bytes_per_cycle

    def take(self, want_bytes: float) -> float:
        got = min(want_bytes, self.available)
        self.available -= got
        self.consumed_total += got
        return got


class EngineSim:
    """One stream engine: issues one stream per cycle, round-robin.

    Implements the Fig. 11 behavior: a flip-flop-based stream table cannot
    re-issue the same stream on back-to-back cycles, so a *single* active
    stream issues every other cycle — unless the one-hot bypass is enabled,
    which forwards the updated entry combinationally and restores full
    rate.  With two or more ready streams the table is naturally pipelined.
    """

    def __init__(
        self,
        name: str,
        bandwidth_bytes: float,
        pools: Tuple[BandwidthPool, ...] = (),
        onehot_bypass: bool = True,
    ):
        self.name = name
        self.bandwidth_bytes = bandwidth_bytes
        self.pools = pools
        self.onehot_bypass = onehot_bypass
        self.streams: List[StreamState] = []
        self._rr = 0
        self._last_issued: Optional[StreamState] = None
        self.issued_cycles = 0
        self.busy_cycles = 0

    def add_stream(self, stream: StreamState) -> None:
        self.streams.append(stream)

    @property
    def active_streams(self) -> List[StreamState]:
        return [s for s in self.streams if not s.done]

    def _ready(self, stream: StreamState, now: int) -> bool:
        if stream.done or now < stream.dispatched_at:
            return False
        if stream.is_read:
            return stream.port.free > 1e-9
        return stream.port.level > 1e-9

    def _serve(self, stream: StreamState, budget_elems: float) -> float:
        """Transfer up to ``budget_elems`` of one stream; returns elements."""
        want = min(
            stream.remaining,
            stream.elements_per_cycle_cap,
            budget_elems,
        )
        if stream.is_read:
            want = min(want, stream.port.free)
        else:
            want = min(want, stream.port.level)
        # Shared-bandwidth arbitration: L2/NoC and DRAM byte budgets.
        if want > 0 and self.pools:
            for pool, fraction in zip(
                self.pools, (stream.l2_fraction, stream.dram_fraction)
            ):
                if fraction <= 0:
                    continue
                need_bytes = want * fraction * stream.element_bytes
                got = pool.take(need_bytes)
                if got < need_bytes - 1e-9:
                    want = got / (fraction * stream.element_bytes)
        if want <= 1e-12:
            return 0.0
        if stream.is_read:
            stream.port.push(want)
        else:
            stream.port.pop(want)
            forward = getattr(stream, "forward_to", None)
            if forward is not None:
                forward.push(want)
        stream.moved += want
        return want

    def step(self, now: int) -> float:
        """Advance one cycle; returns elements moved.

        The engine issues requests for its ready streams round-robin within
        one cycle's byte budget; responses fill each stream's port in
        parallel (the ROB completes multiple transactions per cycle, as in
        Section VI-C).  The serialization hazard is the *stream table*:
        without the one-hot bypass a solitary active stream can only issue
        every other cycle (Fig. 11a).
        """
        candidates = [s for s in self.streams if self._ready(s, now)]
        if not candidates:
            self._last_issued = None
            return 0.0
        active = self.active_streams
        if (
            len(active) == 1
            and not self.onehot_bypass
            and self._last_issued is active[0]
        ):
            self._last_issued = None
            return 0.0
        budget = self.bandwidth_bytes
        moved = 0.0
        n = len(candidates)
        for offset in range(n):
            stream = candidates[(self._rr + offset) % n]
            got = self._serve(stream, budget / stream.element_bytes)
            moved += got
            budget -= got * stream.element_bytes
            if budget <= 1e-12:
                break
        self._rr = (self._rr + 1) % n
        if moved > 0:
            self._last_issued = active[0] if len(active) == 1 else None
            self.issued_cycles += 1
            self.busy_cycles += 1
        else:
            self._last_issued = None
        return moved

    @property
    def done(self) -> bool:
        return all(s.done for s in self.streams)


@dataclass
class FabricConfig:
    """Static description of one tile's compute configuration."""

    #: (port fifo, elements consumed per firing) for every input port.
    inputs: List[Tuple[PortFifo, float]]
    #: (port fifo, elements produced per firing) for every output port.
    outputs: List[Tuple[PortFifo, float]]
    total_firings: float
    pipeline_depth: int
    insts_per_firing: float


class FabricSim:
    """Dedicated-dataflow fabric: one firing per cycle when operands are
    ready and downstream FIFOs have space (II = 1)."""

    def __init__(self, config: FabricConfig):
        self.config = config
        self.firings = 0.0
        #: results in flight: (completion cycle, firing count)
        self._pipeline: List[Tuple[int, float]] = []
        self.stall_cycles = 0

    @property
    def remaining(self) -> float:
        remaining = self.config.total_firings - self.firings
        if remaining <= 1e-6 * max(1.0, self.config.total_firings):
            return 0.0
        return remaining

    @property
    def done(self) -> bool:
        return self.remaining <= 0.0 and not self._pipeline

    def step(self, now: int) -> float:
        # Retire pipeline outputs into output ports, in order.  A full
        # output FIFO stalls retirement — and therefore the whole pipeline.
        while self._pipeline and self._pipeline[0][0] <= now:
            due, count = self._pipeline[0]
            can_push = count
            for port, rate in self.config.outputs:
                if rate > 0:
                    can_push = min(can_push, port.free / rate)
            if can_push <= 1e-12:
                break
            for port, rate in self.config.outputs:
                port.push(can_push * rate)
            if can_push >= count - 1e-12:
                self._pipeline.pop(0)
            else:
                self._pipeline[0] = (due, count - can_push)
                break
        blocked = bool(self._pipeline) and self._pipeline[0][0] <= now
        if self.remaining <= 0.0:
            return 0.0
        if blocked:
            self.stall_cycles += 1
            return 0.0
        # How many firings can launch this cycle (up to 1)?
        can = min(1.0, self.remaining)
        for port, rate in self.config.inputs:
            if rate <= 0:
                continue
            can = min(can, port.level / rate)
        if can <= 1e-12:
            self.stall_cycles += 1
            return 0.0
        for port, rate in self.config.inputs:
            port.pop(can * rate)
        self._pipeline.append((now + self.config.pipeline_depth, can))
        self.firings += can
        return can
