"""Compiled stepping kernel for the vectorized simulator core.

:mod:`repro.sim.vector` packs one tile's simulation state into numpy
struct-of-arrays; this module owns the C stepping kernel that advances
that packed state.  The kernel is an *exact transliteration* of the
object-model inner loop (``components.py`` + the ``simulate_schedule``
driver): every floating-point operation appears in the same order as
the Python source, so IEEE-754 double results — and therefore cycle
counts — are bit-identical to the reference simulator.  That contract
is load-bearing (the differential-fuzz oracle and the memo both key on
exact cycle counts) and is enforced by ``tests/test_sim_vector.py``.

Why C and not numpy ufuncs: the inner loop is a chain of data-dependent
scalar ``min``/compare/accumulate steps across *heterogeneous* coupled
components (engines arbitrating shared bandwidth pools, FIFOs feeding a
retiring pipeline).  There is no per-cycle data parallelism to
vectorize across — the win is removing interpreter dispatch from the
~10^5-cycle regions, plus event-driven skip-ahead over idle cycles.
The packed numpy arrays are the data plane; the C kernel is the only
consumer of their raw buffers.

Toolchain policy: the kernel is built once per process from the
in-repo source string with the *system* C compiler (``cc``), cached on
disk keyed by a source digest.  No new Python dependency is introduced;
when no compiler is available :func:`load_kernel` returns ``None`` and
the simulator transparently falls back to the object core.

Float-determinism flags: ``-ffp-contract=off`` (no fused multiply-add —
CPython never contracts) and no ``-ffast-math`` (IEEE semantics).  On
x86-64 / aarch64 doubles are evaluated in 64-bit registers, matching
CPython's ``float`` exactly.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import threading
from typing import Optional

#: Incremented whenever KERNEL_SOURCE changes semantics; part of the
#: on-disk cache key so stale shared objects are never reused.
KERNEL_VERSION = 1

#: Statuses returned by ``repro_step_region`` (must match the C enum).
STATUS_DONE = 0
STATUS_HARD_CAP = 1
STATUS_DEADLOCK = 2
STATUS_STUCK = 3

KERNEL_SOURCE = r"""
/* Exact C transliteration of repro/sim/components.py stepping +
 * the simulate_schedule driver loop.  See repro/sim/ckernel.py for
 * the bit-identity contract.  Compiled with -ffp-contract=off. */
#include <stdint.h>

typedef struct {
    /* streams (flattened engine-by-engine, add_stream order) */
    int64_t n_streams;
    double *s_total;     /* total_elements */
    double *s_cap;       /* elements_per_cycle_cap */
    double *s_eb;        /* element_bytes */
    double *s_l2f;       /* l2_fraction */
    double *s_dramf;     /* dram_fraction */
    double *s_moved;     /* moved (in/out) */
    double *s_done_tol;  /* 1e-6 * max(1.0, total_elements) */
    int64_t *s_disp;     /* dispatched_at */
    int64_t *s_is_read;
    int64_t *s_fifo;     /* port fifo index */
    int64_t *s_fwd;      /* forward_to fifo index, -1 if none */
    /* port FIFOs */
    int64_t n_fifos;
    double *f_cap;
    double *f_level;     /* in/out */
    /* engines (insertion order == driver step order) */
    int64_t n_engines;
    int64_t *e_start;    /* [start, end) into the stream arrays */
    int64_t *e_end;
    double *e_bw;        /* bandwidth_bytes */
    int64_t *e_onehot;
    int64_t *e_has_pools;
    int64_t *e_rr;       /* in/out */
    int64_t *e_last;     /* _last_issued as stream index, -1 = None */
    int64_t *e_issued;   /* in/out */
    int64_t *e_busy;     /* in/out */
    /* bandwidth pools: index 0 = l2, 1 = dram */
    int64_t n_pools;
    double *p_rate;      /* bytes_per_cycle */
    double *p_avail;     /* in/out */
    double *p_consumed;  /* in/out */
    /* fabric */
    int64_t n_in;
    int64_t *in_fifo;
    double *in_rate;
    int64_t n_out;
    int64_t *out_fifo;
    double *out_rate;
    double fab_total;       /* total_firings */
    double fab_done_tol;    /* 1e-6 * max(1.0, total_firings) */
    int64_t fab_depth;
    double *fab_firings;    /* [1] in/out */
    int64_t *fab_stalls;    /* [1] in/out */
    /* pipeline ring buffer (<= depth+1 live entries) */
    int64_t pipe_cap;
    int64_t *pipe_due;
    double *pipe_count;
    int64_t *pipe_head;     /* [1] in/out */
    int64_t *pipe_len;      /* [1] in/out */
    /* driver parameters */
    int64_t exact;
    int64_t hard_cap;
    int64_t measure_window;
    int64_t *now;           /* [1] in/out */
    int64_t *last_progress; /* [1] in/out */
    double *last_firings;   /* [1] in/out */
    double *window_firings; /* [1] out */
    int64_t *window_cycle;  /* [1] out */
} TileState;

enum {
    STATUS_DONE = 0,
    STATUS_HARD_CAP = 1,
    STATUS_DEADLOCK = 2,
    STATUS_STUCK = 3
};

/* PortFifo.push: taken = min(amount, free); level += taken */
static void fifo_push(TileState *st, int64_t f, double amount) {
    double fr = st->f_cap[f] - st->f_level[f];
    if (fr < 0.0) fr = 0.0;
    double taken = (fr < amount) ? fr : amount;
    st->f_level[f] += taken;
}

/* PortFifo.pop: taken = min(amount, level); level -= taken */
static void fifo_pop(TileState *st, int64_t f, double amount) {
    double lv = st->f_level[f];
    double taken = (lv < amount) ? lv : amount;
    st->f_level[f] = lv - taken;
}

/* StreamState.done: max(0, total - moved) <= 1e-6 * max(1, total) */
static int stream_done(const TileState *st, int64_t s) {
    double remaining = st->s_total[s] - st->s_moved[s];
    if (remaining < 0.0) remaining = 0.0;
    return remaining <= st->s_done_tol[s];
}

/* EngineSim._serve */
static double serve(TileState *st, int64_t ei, int64_t s,
                    double budget_elems) {
    double remaining = st->s_total[s] - st->s_moved[s];
    if (remaining < 0.0) remaining = 0.0;
    double want = remaining;
    if (st->s_cap[s] < want) want = st->s_cap[s];
    if (budget_elems < want) want = budget_elems;
    int64_t f = st->s_fifo[s];
    if (st->s_is_read[s]) {
        double fr = st->f_cap[f] - st->f_level[f];
        if (fr < 0.0) fr = 0.0;
        if (fr < want) want = fr;
    } else {
        if (st->f_level[f] < want) want = st->f_level[f];
    }
    if (want > 0.0 && st->e_has_pools[ei]) {
        /* zip(pools, (l2_fraction, dram_fraction)) */
        double frac = st->s_l2f[s];
        if (frac > 0.0) {
            double need = want * frac * st->s_eb[s];
            double got = (st->p_avail[0] < need) ? st->p_avail[0] : need;
            st->p_avail[0] -= got;
            st->p_consumed[0] += got;
            if (got < need - 1e-9) want = got / (frac * st->s_eb[s]);
        }
        frac = st->s_dramf[s];
        if (frac > 0.0) {
            double need = want * frac * st->s_eb[s];
            double got = (st->p_avail[1] < need) ? st->p_avail[1] : need;
            st->p_avail[1] -= got;
            st->p_consumed[1] += got;
            if (got < need - 1e-9) want = got / (frac * st->s_eb[s]);
        }
    }
    if (want <= 1e-12) return 0.0;
    if (st->s_is_read[s]) {
        fifo_push(st, f, want);
    } else {
        fifo_pop(st, f, want);
        if (st->s_fwd[s] >= 0) fifo_push(st, st->s_fwd[s], want);
    }
    st->s_moved[s] += want;
    return want;
}

/* EngineSim.step; returns 1 when any persistent engine state changed
 * (moved / rr / last_issued) — pool consumption is checked by the
 * driver.  The change flag feeds the event-skip frozen-cycle test. */
static int engine_step(TileState *st, int64_t ei, int64_t now,
                       int64_t *cand) {
    int64_t start = st->e_start[ei], end = st->e_end[ei];
    int64_t n = 0, n_active = 0, first_active = -1;
    for (int64_t s = start; s < end; s++) {
        int done = stream_done(st, s);
        if (!done) {
            if (first_active < 0) first_active = s;
            n_active++;
        }
        if (done || now < st->s_disp[s]) continue;
        int64_t f = st->s_fifo[s];
        if (st->s_is_read[s]) {
            double fr = st->f_cap[f] - st->f_level[f];
            if (fr < 0.0) fr = 0.0;
            if (!(fr > 1e-9)) continue;
        } else {
            if (!(st->f_level[f] > 1e-9)) continue;
        }
        cand[n++] = s;
    }
    int64_t last_old = st->e_last[ei];
    if (n == 0) {
        st->e_last[ei] = -1;
        return last_old != -1;
    }
    if (n_active == 1 && !st->e_onehot[ei] && last_old == first_active) {
        st->e_last[ei] = -1;
        return 1; /* last_old was first_active (>= 0), now cleared */
    }
    double budget = st->e_bw[ei];
    double moved = 0.0;
    int64_t rr = st->e_rr[ei];
    for (int64_t off = 0; off < n; off++) {
        int64_t s = cand[(rr + off) % n];
        double got = serve(st, ei, s, budget / st->s_eb[s]);
        moved += got;
        budget -= got * st->s_eb[s];
        if (budget <= 1e-12) break;
    }
    int64_t rr_new = (rr + 1) % n;
    st->e_rr[ei] = rr_new;
    int64_t last_new;
    if (moved > 0.0) {
        last_new = (n_active == 1) ? first_active : -1;
        st->e_issued[ei] += 1;
        st->e_busy[ei] += 1;
    } else {
        last_new = -1;
    }
    st->e_last[ei] = last_new;
    return (moved > 0.0) || rr_new != rr || last_new != last_old;
}

/* FabricSim.step; returns 1 when pipeline/firings/fifo state changed
 * (stall_cycles increments are replayed analytically by the skip). */
static int fabric_step(TileState *st, int64_t now) {
    int changed = 0;
    int64_t head = *st->pipe_head, len = *st->pipe_len;
    while (len > 0 && st->pipe_due[head] <= now) {
        double count = st->pipe_count[head];
        double can_push = count;
        for (int64_t i = 0; i < st->n_out; i++) {
            double rate = st->out_rate[i];
            if (rate > 0.0) {
                int64_t f = st->out_fifo[i];
                double fr = st->f_cap[f] - st->f_level[f];
                if (fr < 0.0) fr = 0.0;
                double q = fr / rate;
                if (q < can_push) can_push = q;
            }
        }
        if (can_push <= 1e-12) break;
        for (int64_t i = 0; i < st->n_out; i++)
            fifo_push(st, st->out_fifo[i], can_push * st->out_rate[i]);
        changed = 1;
        if (can_push >= count - 1e-12) {
            head = (head + 1) % st->pipe_cap;
            len -= 1;
        } else {
            st->pipe_count[head] = count - can_push;
            break;
        }
    }
    *st->pipe_head = head;
    *st->pipe_len = len;
    int blocked = (len > 0 && st->pipe_due[head] <= now);
    double remaining = st->fab_total - *st->fab_firings;
    if (remaining <= st->fab_done_tol) remaining = 0.0;
    if (remaining <= 0.0) return changed;
    if (blocked) {
        *st->fab_stalls += 1;
        return changed;
    }
    double can = (remaining < 1.0) ? remaining : 1.0;
    for (int64_t i = 0; i < st->n_in; i++) {
        double rate = st->in_rate[i];
        if (rate <= 0.0) continue;
        double q = st->f_level[st->in_fifo[i]] / rate;
        if (q < can) can = q;
    }
    if (can <= 1e-12) {
        *st->fab_stalls += 1;
        return changed;
    }
    for (int64_t i = 0; i < st->n_in; i++)
        fifo_pop(st, st->in_fifo[i], can * st->in_rate[i]);
    int64_t tail = (head + len) % st->pipe_cap;
    st->pipe_due[tail] = now + st->fab_depth;
    st->pipe_count[tail] = can;
    *st->pipe_len = len + 1;
    *st->fab_firings += can;
    return 1;
}

/* FabricSim.done */
static int fabric_done(const TileState *st) {
    double remaining = st->fab_total - *st->fab_firings;
    if (remaining <= st->fab_done_tol) remaining = 0.0;
    return remaining <= 0.0 && *st->pipe_len == 0;
}

/* The simulate_schedule driver loop.  `cand` is caller-provided
 * scratch of n_streams int64s.  Event-skip invariant: a cycle whose
 * step changed no persistent state (stream/fifo/pool/pipeline/rr/
 * last_issued/firings) except possibly stall_cycles is "frozen"; all
 * following cycles are identical until the next event — the earliest
 * of: a stream's dispatched_at, the pipeline head's due cycle, the
 * hard cap, and the no-progress deadline.  Skipped cycles replay
 * stall_cycles increments analytically. */
int64_t repro_step_region(TileState *st, int64_t *cand) {
    int64_t now = *st->now;
    int64_t last_progress = *st->last_progress;
    double last_firings = *st->last_firings;
    int64_t status;
    for (;;) {
        if (fabric_done(st)) {
            /* Residual read elements terminate with the region. */
            for (int64_t s = 0; s < st->n_streams; s++) {
                if (st->s_is_read[s] && !stream_done(st, s))
                    st->s_moved[s] = st->s_total[s];
            }
            int all_done = 1;
            for (int64_t s = 0; s < st->n_streams; s++) {
                if (!stream_done(st, s)) { all_done = 0; break; }
            }
            if (all_done) { status = STATUS_DONE; break; }
        }
        if (!st->exact && now >= st->hard_cap) {
            status = STATUS_HARD_CAP;
            break;
        }
        for (int64_t p = 0; p < st->n_pools; p++)
            st->p_avail[p] = st->p_rate[p];
        double consumed0 = (st->n_pools > 0) ? st->p_consumed[0] : 0.0;
        double consumed1 = (st->n_pools > 1) ? st->p_consumed[1] : 0.0;
        int64_t stalls_before = *st->fab_stalls;
        int changed = 0;
        for (int64_t e = 0; e < st->n_engines; e++)
            changed |= engine_step(st, e, now, cand);
        changed |= fabric_step(st, now);
        if (st->n_pools > 0 && st->p_consumed[0] != consumed0) changed = 1;
        if (st->n_pools > 1 && st->p_consumed[1] != consumed1) changed = 1;
        if (*st->fab_firings != last_firings) {
            last_firings = *st->fab_firings;
            last_progress = now;
        }
        int fdone = fabric_done(st);
        if (now - last_progress > 20000 && !fdone) {
            status = STATUS_DEADLOCK;
            break;
        }
        now += 1;
        if (now == st->measure_window) {
            *st->window_firings = *st->fab_firings;
            *st->window_cycle = now;
        }
        if (!changed) {
            int64_t stall_delta = *st->fab_stalls - stalls_before;
            int64_t next = INT64_MAX;
            for (int64_t s = 0; s < st->n_streams; s++) {
                if (!stream_done(st, s) && st->s_disp[s] >= now
                        && st->s_disp[s] < next)
                    next = st->s_disp[s];
            }
            if (*st->pipe_len > 0) {
                int64_t due = st->pipe_due[*st->pipe_head];
                if (due >= now && due < next) next = due;
            }
            if (!st->exact && st->hard_cap < next) next = st->hard_cap;
            if (!fdone) {
                /* The no-progress check fires after stepping cycle
                 * last_progress + 20001; frozen cycles cannot move
                 * firings, so jump straight to the deadline. */
                int64_t deadline = last_progress + 20001;
                if (deadline < next) {
                    now = deadline;
                    status = STATUS_DEADLOCK;
                    break;
                }
            } else if (next == INT64_MAX) {
                /* Frozen with a drained fabric and no future event:
                 * the object loop would spin forever.  Surface it. */
                status = STATUS_STUCK;
                break;
            }
            if (next > now) {
                int64_t skipped = next - now;
                *st->fab_stalls += skipped * stall_delta;
                if (st->measure_window > now
                        && st->measure_window <= next) {
                    *st->window_firings = *st->fab_firings;
                    *st->window_cycle = st->measure_window;
                }
                now = next;
            }
        }
    }
    *st->now = now;
    *st->last_progress = last_progress;
    *st->last_firings = last_firings;
    return status;
}
"""

_P_DOUBLE = ctypes.POINTER(ctypes.c_double)
_P_INT64 = ctypes.POINTER(ctypes.c_int64)


class TileStateStruct(ctypes.Structure):
    """ctypes mirror of the C ``TileState`` (field order must match)."""

    _fields_ = [
        ("n_streams", ctypes.c_int64),
        ("s_total", _P_DOUBLE),
        ("s_cap", _P_DOUBLE),
        ("s_eb", _P_DOUBLE),
        ("s_l2f", _P_DOUBLE),
        ("s_dramf", _P_DOUBLE),
        ("s_moved", _P_DOUBLE),
        ("s_done_tol", _P_DOUBLE),
        ("s_disp", _P_INT64),
        ("s_is_read", _P_INT64),
        ("s_fifo", _P_INT64),
        ("s_fwd", _P_INT64),
        ("n_fifos", ctypes.c_int64),
        ("f_cap", _P_DOUBLE),
        ("f_level", _P_DOUBLE),
        ("n_engines", ctypes.c_int64),
        ("e_start", _P_INT64),
        ("e_end", _P_INT64),
        ("e_bw", _P_DOUBLE),
        ("e_onehot", _P_INT64),
        ("e_has_pools", _P_INT64),
        ("e_rr", _P_INT64),
        ("e_last", _P_INT64),
        ("e_issued", _P_INT64),
        ("e_busy", _P_INT64),
        ("n_pools", ctypes.c_int64),
        ("p_rate", _P_DOUBLE),
        ("p_avail", _P_DOUBLE),
        ("p_consumed", _P_DOUBLE),
        ("n_in", ctypes.c_int64),
        ("in_fifo", _P_INT64),
        ("in_rate", _P_DOUBLE),
        ("n_out", ctypes.c_int64),
        ("out_fifo", _P_INT64),
        ("out_rate", _P_DOUBLE),
        ("fab_total", ctypes.c_double),
        ("fab_done_tol", ctypes.c_double),
        ("fab_depth", ctypes.c_int64),
        ("fab_firings", _P_DOUBLE),
        ("fab_stalls", _P_INT64),
        ("pipe_cap", ctypes.c_int64),
        ("pipe_due", _P_INT64),
        ("pipe_count", _P_DOUBLE),
        ("pipe_head", _P_INT64),
        ("pipe_len", _P_INT64),
        ("exact", ctypes.c_int64),
        ("hard_cap", ctypes.c_int64),
        ("measure_window", ctypes.c_int64),
        ("now", _P_INT64),
        ("last_progress", _P_INT64),
        ("last_firings", _P_DOUBLE),
        ("window_firings", _P_DOUBLE),
        ("window_cycle", _P_INT64),
    ]


#: Compiler flags that preserve CPython's float semantics: IEEE doubles,
#: no FMA contraction, no value-unsafe reassociation.
CFLAGS = ("-O2", "-fPIC", "-shared", "-ffp-contract=off", "-fno-fast-math")

_lock = threading.Lock()
_kernel: Optional["Kernel"] = None
_load_attempted = False
_load_error: Optional[str] = None


class Kernel:
    """A loaded stepping kernel: the shared library + bound entry point."""

    def __init__(self, lib: ctypes.CDLL, path: str):
        self.lib = lib
        self.path = path
        self.step_region = lib.repro_step_region
        self.step_region.argtypes = [
            ctypes.POINTER(TileStateStruct),
            _P_INT64,
        ]
        self.step_region.restype = ctypes.c_int64


def _cache_dir() -> str:
    override = os.environ.get("REPRO_KERNEL_CACHE")
    if override:
        return override
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return os.path.join(tempfile.gettempdir(), f"repro-sim-kernel-{uid}")


def _source_digest() -> str:
    payload = f"v{KERNEL_VERSION}\n{KERNEL_SOURCE}".encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def _compile(cache_dir: str) -> str:
    """Compile the kernel into the cache; returns the .so path."""
    os.makedirs(cache_dir, exist_ok=True)
    digest = _source_digest()
    so_path = os.path.join(cache_dir, f"repro_sim_kernel_{digest}.so")
    if os.path.exists(so_path):
        return so_path
    cc = os.environ.get("CC", "cc")
    src_path = os.path.join(cache_dir, f"repro_sim_kernel_{digest}.c")
    tmp_so = f"{so_path}.tmp.{os.getpid()}"
    with open(src_path, "w") as f:
        f.write(KERNEL_SOURCE)
    subprocess.run(
        [cc, *CFLAGS, "-o", tmp_so, src_path],
        check=True,
        capture_output=True,
        timeout=120,
    )
    os.replace(tmp_so, so_path)  # atomic: concurrent builders race safely
    return so_path


def load_kernel() -> Optional[Kernel]:
    """Compile (once, cached on disk) and load the stepping kernel.

    Returns ``None`` when no C compiler is available or the build
    fails; the failure is remembered so a broken toolchain costs one
    subprocess per process, not one per region.
    """
    global _kernel, _load_attempted, _load_error
    with _lock:
        if _kernel is not None or _load_attempted:
            return _kernel
        _load_attempted = True
        try:
            so_path = _compile(_cache_dir())
            _kernel = Kernel(ctypes.CDLL(so_path), so_path)
        except Exception as exc:  # noqa: BLE001 - any toolchain failure
            _load_error = f"{type(exc).__name__}: {exc}"
            _kernel = None
        return _kernel


def kernel_available() -> bool:
    return load_kernel() is not None


def load_error() -> Optional[str]:
    """Why the kernel failed to load (None when loaded or untried)."""
    return _load_error
