"""Stream dispatcher microarchitecture model (Section VI-B, Fig. 9).

The dispatcher bridges the control core and the spatial memory system.
Each stream's lifetime:

1. **stream config** — the core writes changed stream parameters into the
   stream register file (one RoCC write per changed parameter; unchanged
   parameters are reused across streams — the register file exists exactly
   so short streams don't pay full re-description);
2. **stream instantiation** — a finalize command decodes the register file
   into an elaborated stream entry in the dispatch queue (1 cycle);
3. **stream synchronization** — a Tomasulo-style scoreboard holds the entry
   until its engine/port resources are free; dispatch is out-of-order
   across entries but respects per-port request order; barriers block
   until named resources drain.

Performance contract (paper): one dispatch per cycle; N completions per
cycle; minimum RoCC-to-dispatch latency of 2 cycles.

Unlike the tile stepper (see :mod:`repro.sim.ckernel`), this model is
already event-form — it jumps straight between config/instantiate/
dispatch events instead of ticking cycles — which is the same invariant
the vectorized core's skip-ahead enforces: a cycle with no state change
is never materialized.  The two models meet in the steady state: the
dispatcher prices getting a stream *into* an engine, the tile stepper
prices the stream once it is resident.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Parameters describing one stream in the register file.
PARAM_FIELDS = ("address", "length", "stride", "dimension", "port", "engine")

#: Cycles from the finalize command to dispatch when no hazard exists
#: (one cycle instantiation + one cycle dispatch).
MIN_DISPATCH_LATENCY = 2


@dataclass(frozen=True)
class StreamCommand:
    """One stream the control core wants to launch."""

    name: str
    engine: str
    port: str
    #: parameter values written to the stream register file.
    params: Dict[str, int] = field(default_factory=dict)
    #: cycles the stream occupies its engine/port once dispatched.
    duration: int = 10


@dataclass(frozen=True)
class Barrier:
    """A synchronization command: blocks until the resources drain.

    Empty ``resources`` means a full barrier over everything in flight.
    """

    resources: Tuple[str, ...] = ()


@dataclass
class DispatchRecord:
    name: str
    config_done: int      # cycle the last parameter write retired
    instantiated: int     # cycle the entry entered the dispatch queue
    dispatched: int       # cycle the entry left for its engine
    completes: int        # cycle the stream frees its resources

    @property
    def dispatch_latency(self) -> int:
        """Cycles from finalize (instantiation command) to dispatch."""
        return self.dispatched - self.config_done


class StreamDispatcher:
    """Cycle-accounting model of the dispatcher's three pipeline steps."""

    def __init__(self) -> None:
        #: stream register file: last written value per parameter.
        self.register_file: Dict[str, int] = {}
        #: resource -> cycle at which it becomes free.
        self._busy_until: Dict[str, int] = {}
        self.records: List[DispatchRecord] = []
        self._port_last_dispatch: Dict[str, int] = {}
        self._now = 0

    # ------------------------------------------------------------------
    def _config_cycles(self, command: StreamCommand) -> int:
        """Parameter writes needed: only *changed* registers are written."""
        writes = 0
        for key, value in sorted(command.params.items()):
            if self.register_file.get(key) != value:
                self.register_file[key] = value
                writes += 1
        return writes

    def issue(self, command: StreamCommand) -> DispatchRecord:
        """Run one stream through config -> instantiate -> dispatch."""
        config_done = self._now + self._config_cycles(command)
        instantiated = config_done + 1
        # Scoreboard: a port is exclusive (one stream at a time); engines
        # host multiple concurrent streams via their stream tables, so they
        # do not block dispatch.
        ready = max(
            instantiated + 1,
            self._busy_until.get(f"port:{command.port}", 0),
        )
        # Per-port request order: a younger stream on the same port never
        # overtakes an older one.
        ready = max(ready, self._port_last_dispatch.get(command.port, 0) + 1)
        dispatched = ready
        completes = dispatched + command.duration
        self._busy_until[f"port:{command.port}"] = completes
        self._busy_until[f"engine:{command.engine}"] = completes
        self._port_last_dispatch[command.port] = dispatched
        record = DispatchRecord(
            name=command.name,
            config_done=config_done,
            instantiated=instantiated,
            dispatched=dispatched,
            completes=completes,
        )
        self.records.append(record)
        # The core issues the next command the cycle after this finalize
        # (dispatch itself proceeds in the background).
        self._now = instantiated
        return record

    def barrier(self, barrier: Barrier = Barrier()) -> int:
        """Block until the named (or all) resources drain; returns cycle."""
        if barrier.resources:
            keys = [
                k
                for k in self._busy_until
                if any(k.endswith(r) for r in barrier.resources)
            ]
        else:
            keys = list(self._busy_until)
        wait_until = max(
            (self._busy_until[k] for k in keys), default=self._now
        )
        self._now = max(self._now, wait_until)
        # Prune drained scoreboard entries: a resource free at or before
        # ``now`` can never raise a future ready time (dispatch readiness
        # is already >= now + 2), so dropping it is semantics-preserving
        # and keeps scans O(live resources) on long command sequences.
        self._busy_until = {
            k: v for k, v in self._busy_until.items() if v > self._now
        }
        return self._now

    # ------------------------------------------------------------------
    def run(self, commands: Sequence) -> int:
        """Issue a command sequence; returns the cycle everything drains."""
        for command in commands:
            if isinstance(command, Barrier):
                self.barrier(command)
            else:
                self.issue(command)
        return self.barrier()

    @property
    def now(self) -> int:
        return self._now

    def dispatch_rate(self) -> float:
        """Dispatched streams per cycle over the busy window."""
        if not self.records:
            return 0.0
        span = max(r.dispatched for r in self.records) - min(
            r.config_done for r in self.records
        )
        return len(self.records) / max(1, span)
