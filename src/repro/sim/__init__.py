"""Cycle-level simulator for generated overlays (Section VI hardware)."""

from .components import (
    BandwidthPool,
    EngineSim,
    FabricConfig,
    FabricSim,
    PortFifo,
    StreamState,
)
from .dispatcher import (
    Barrier,
    DispatchRecord,
    MIN_DISPATCH_LATENCY,
    StreamCommand,
    StreamDispatcher,
)
from .batch import simulate_batch, simulate_workloads_jobs
from .multiplex import (
    MultiplexResult,
    reconfiguration_cycles,
    run_sequence,
)
from .vector import vector_core_available
from .simulator import (
    DISPATCH_LATENCY,
    SimResult,
    SimulationError,
    build_tile,
    critical_path_depth,
    simulate_schedule,
)

__all__ = [
    "BandwidthPool",
    "Barrier",
    "DispatchRecord",
    "MIN_DISPATCH_LATENCY",
    "MultiplexResult",
    "StreamCommand",
    "StreamDispatcher",
    "reconfiguration_cycles",
    "run_sequence",
    "DISPATCH_LATENCY",
    "EngineSim",
    "FabricConfig",
    "FabricSim",
    "PortFifo",
    "SimResult",
    "SimulationError",
    "StreamState",
    "build_tile",
    "critical_path_depth",
    "simulate_batch",
    "simulate_schedule",
    "simulate_workloads_jobs",
    "vector_core_available",
]
