"""Cycle-level simulator for generated overlays (Section VI hardware)."""

from .components import (
    BandwidthPool,
    EngineSim,
    FabricConfig,
    FabricSim,
    PortFifo,
    StreamState,
)
from .dispatcher import (
    Barrier,
    DispatchRecord,
    MIN_DISPATCH_LATENCY,
    StreamCommand,
    StreamDispatcher,
)
from .multiplex import (
    MultiplexResult,
    reconfiguration_cycles,
    run_sequence,
)
from .simulator import (
    DISPATCH_LATENCY,
    SimResult,
    SimulationError,
    build_tile,
    critical_path_depth,
    simulate_schedule,
)

__all__ = [
    "BandwidthPool",
    "Barrier",
    "DispatchRecord",
    "MIN_DISPATCH_LATENCY",
    "MultiplexResult",
    "StreamCommand",
    "StreamDispatcher",
    "reconfiguration_cycles",
    "run_sequence",
    "DISPATCH_LATENCY",
    "EngineSim",
    "FabricConfig",
    "FabricSim",
    "PortFifo",
    "SimResult",
    "SimulationError",
    "StreamState",
    "build_tile",
    "critical_path_depth",
    "simulate_schedule",
]
