"""Array-form state packing for the vectorized simulator core.

The object model in :mod:`repro.sim.components` stays the reference
implementation; this module packs one built tile (engines, fabric,
pools) into numpy struct-of-arrays grouped per component class —
streams, port FIFOs, engines, bandwidth pools, and the fabric pipeline
as a fixed ring buffer — and steps the whole region in one call to the
compiled kernel (:mod:`repro.sim.ckernel`).  After the run the packed
state is written back into the original objects, so result assembly
and all introspection (engine busy counters, pool bytes, FIFO levels,
pipeline contents) are identical between cores.

State layout (documented in DESIGN.md's sim-core row):

* streams: parallel float64/int64 arrays, flattened engine-by-engine in
  the driver's step order; per-stream FIFO and forward-FIFO indices.
* FIFOs: capacity/level arrays; every FIFO referenced by any stream or
  fabric port gets one slot (identity-deduplicated).
* engines: ``[start, end)`` stream ranges plus bandwidth, bypass flag,
  round-robin pointer, last-issued stream index (-1 = None).
* pools: fixed slots 0 = l2, 1 = dram (the only shape ``build_tile``
  produces; anything else falls back to the object core).
* pipeline: (due, count) ring buffer of at most depth+1 live entries.

The kernel is an exact transliteration of the object stepping order, so
all synced-back floats are bit-identical to an object-core run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import ctypes

import numpy as np

from .ckernel import (
    STATUS_DEADLOCK,
    STATUS_DONE,
    STATUS_HARD_CAP,
    STATUS_STUCK,
    TileStateStruct,
    load_kernel,
)
from .components import BandwidthPool, EngineSim, FabricSim, StreamState

__all__ = [
    "TilePack",
    "VectorOutcome",
    "pack_tile",
    "run_packed_region",
    "vector_core_available",
]


def vector_core_available() -> bool:
    """True when the compiled stepping kernel can be built and loaded."""
    return load_kernel() is not None


@dataclass
class TilePack:
    """One tile's simulation state as numpy struct-of-arrays."""

    engines: List[EngineSim]
    fabric: FabricSim
    pools: List[BandwidthPool]
    streams: List[StreamState]
    fifos: List[object]  # PortFifo, identity-ordered
    arrays: Dict[str, np.ndarray]
    scratch: np.ndarray  # candidate-index scratch for the kernel


@dataclass
class VectorOutcome:
    """Driver-loop outcome of one kernel region run."""

    status: int
    now: int
    window_firings: float
    window_cycle: int
    done: bool
    hard_capped: bool
    deadlocked: bool
    stuck: bool


def pack_tile(
    engines: Sequence[EngineSim],
    fabric: FabricSim,
    pools: Sequence[BandwidthPool],
) -> Optional[TilePack]:
    """Pack a freshly built tile into arrays; None if the shape is
    outside what the kernel models (caller falls back to objects)."""
    pools = list(pools)
    for engine in engines:
        if not engine.pools:
            continue
        # The kernel hard-codes pool slots (0=l2, 1=dram) in build_tile's
        # engine order; any other pool wiring is not representable.
        if len(pools) != 2 or len(engine.pools) != 2:
            return None
        if engine.pools[0] is not pools[0] or engine.pools[1] is not pools[1]:
            return None

    fifo_ids: Dict[int, int] = {}
    fifos: List[object] = []

    def fifo_index(fifo) -> int:
        key = id(fifo)
        if key not in fifo_ids:
            fifo_ids[key] = len(fifos)
            fifos.append(fifo)
        return fifo_ids[key]

    streams: List[StreamState] = []
    e_start: List[int] = []
    e_end: List[int] = []
    for engine in engines:
        e_start.append(len(streams))
        streams.extend(engine.streams)
        e_end.append(len(streams))

    n_s = len(streams)
    arr: Dict[str, np.ndarray] = {
        "s_total": np.empty(n_s, dtype=np.float64),
        "s_cap": np.empty(n_s, dtype=np.float64),
        "s_eb": np.empty(n_s, dtype=np.float64),
        "s_l2f": np.empty(n_s, dtype=np.float64),
        "s_dramf": np.empty(n_s, dtype=np.float64),
        "s_moved": np.empty(n_s, dtype=np.float64),
        "s_done_tol": np.empty(n_s, dtype=np.float64),
        "s_disp": np.empty(n_s, dtype=np.int64),
        "s_is_read": np.empty(n_s, dtype=np.int64),
        "s_fifo": np.empty(n_s, dtype=np.int64),
        "s_fwd": np.empty(n_s, dtype=np.int64),
    }
    for i, s in enumerate(streams):
        arr["s_total"][i] = s.total_elements
        arr["s_cap"][i] = s.elements_per_cycle_cap
        arr["s_eb"][i] = s.element_bytes
        arr["s_l2f"][i] = s.l2_fraction
        arr["s_dramf"][i] = s.dram_fraction
        arr["s_moved"][i] = s.moved
        # Same product the done property computes every call.
        arr["s_done_tol"][i] = 1e-6 * max(1.0, s.total_elements)
        arr["s_disp"][i] = s.dispatched_at
        arr["s_is_read"][i] = 1 if s.is_read else 0
        arr["s_fifo"][i] = fifo_index(s.port)
        forward = getattr(s, "forward_to", None)
        arr["s_fwd"][i] = -1 if forward is None else fifo_index(forward)

    for fifo, _rate in fabric.config.inputs:
        fifo_index(fifo)
    for fifo, _rate in fabric.config.outputs:
        fifo_index(fifo)

    n_f = len(fifos)
    arr["f_cap"] = np.array([f.capacity for f in fifos], dtype=np.float64)
    arr["f_level"] = np.array([f.level for f in fifos], dtype=np.float64)
    if n_f == 0:  # keep pointers valid for the kernel
        arr["f_cap"] = np.zeros(1, dtype=np.float64)
        arr["f_level"] = np.zeros(1, dtype=np.float64)

    n_e = len(engines)
    arr["e_start"] = np.array(e_start, dtype=np.int64)
    arr["e_end"] = np.array(e_end, dtype=np.int64)
    arr["e_bw"] = np.array(
        [e.bandwidth_bytes for e in engines], dtype=np.float64
    )
    arr["e_onehot"] = np.array(
        [1 if e.onehot_bypass else 0 for e in engines], dtype=np.int64
    )
    arr["e_has_pools"] = np.array(
        [1 if e.pools else 0 for e in engines], dtype=np.int64
    )
    arr["e_rr"] = np.array([e._rr for e in engines], dtype=np.int64)
    last: List[int] = []
    for ei, engine in enumerate(engines):
        if engine._last_issued is None:
            last.append(-1)
            continue
        idx = next(
            (
                k
                for k, s in enumerate(engine.streams)
                if s is engine._last_issued
            ),
            None,
        )
        if idx is None:
            return None
        last.append(e_start[ei] + idx)
    arr["e_last"] = np.array(last, dtype=np.int64)
    arr["e_issued"] = np.array(
        [e.issued_cycles for e in engines], dtype=np.int64
    )
    arr["e_busy"] = np.array(
        [e.busy_cycles for e in engines], dtype=np.int64
    )

    arr["p_rate"] = np.array(
        [p.bytes_per_cycle for p in pools], dtype=np.float64
    )
    arr["p_avail"] = np.array([p.available for p in pools], dtype=np.float64)
    arr["p_consumed"] = np.array(
        [p.consumed_total for p in pools], dtype=np.float64
    )
    if not pools:
        arr["p_rate"] = np.zeros(1, dtype=np.float64)
        arr["p_avail"] = np.zeros(1, dtype=np.float64)
        arr["p_consumed"] = np.zeros(1, dtype=np.float64)

    cfg = fabric.config
    arr["in_fifo"] = np.array(
        [fifo_index(f) for f, _r in cfg.inputs] or [0], dtype=np.int64
    )
    arr["in_rate"] = np.array(
        [r for _f, r in cfg.inputs] or [0.0], dtype=np.float64
    )
    arr["out_fifo"] = np.array(
        [fifo_index(f) for f, _r in cfg.outputs] or [0], dtype=np.int64
    )
    arr["out_rate"] = np.array(
        [r for _f, r in cfg.outputs] or [0.0], dtype=np.float64
    )

    pipe_cap = int(cfg.pipeline_depth) + 8
    arr["pipe_due"] = np.zeros(pipe_cap, dtype=np.int64)
    arr["pipe_count"] = np.zeros(pipe_cap, dtype=np.float64)
    for i, (due, count) in enumerate(fabric._pipeline):
        arr["pipe_due"][i] = due
        arr["pipe_count"][i] = count
    arr["pipe_head"] = np.zeros(1, dtype=np.int64)
    arr["pipe_len"] = np.array([len(fabric._pipeline)], dtype=np.int64)

    arr["fab_firings"] = np.array([fabric.firings], dtype=np.float64)
    arr["fab_stalls"] = np.array([fabric.stall_cycles], dtype=np.int64)

    arr["now"] = np.zeros(1, dtype=np.int64)
    arr["last_progress"] = np.zeros(1, dtype=np.int64)
    arr["last_firings"] = np.array([-1.0], dtype=np.float64)
    arr["window_firings"] = np.zeros(1, dtype=np.float64)
    arr["window_cycle"] = np.zeros(1, dtype=np.int64)

    scratch = np.zeros(max(1, n_s), dtype=np.int64)
    assert n_e == len(e_start) and n_f == len(fifos)
    return TilePack(
        engines=list(engines),
        fabric=fabric,
        pools=pools,
        streams=streams,
        fifos=fifos,
        arrays=arr,
        scratch=scratch,
    )


def _dptr(a: np.ndarray):
    return a.ctypes.data_as(ctypes.POINTER(ctypes.c_double))


def _iptr(a: np.ndarray):
    return a.ctypes.data_as(ctypes.POINTER(ctypes.c_int64))


def _build_struct(
    pack: TilePack, exact: bool, hard_cap: int, measure_window: int
) -> TileStateStruct:
    a = pack.arrays
    cfg = pack.fabric.config
    total = cfg.total_firings
    st = TileStateStruct()
    st.n_streams = len(pack.streams)
    st.s_total = _dptr(a["s_total"])
    st.s_cap = _dptr(a["s_cap"])
    st.s_eb = _dptr(a["s_eb"])
    st.s_l2f = _dptr(a["s_l2f"])
    st.s_dramf = _dptr(a["s_dramf"])
    st.s_moved = _dptr(a["s_moved"])
    st.s_done_tol = _dptr(a["s_done_tol"])
    st.s_disp = _iptr(a["s_disp"])
    st.s_is_read = _iptr(a["s_is_read"])
    st.s_fifo = _iptr(a["s_fifo"])
    st.s_fwd = _iptr(a["s_fwd"])
    st.n_fifos = len(pack.fifos)
    st.f_cap = _dptr(a["f_cap"])
    st.f_level = _dptr(a["f_level"])
    st.n_engines = len(pack.engines)
    st.e_start = _iptr(a["e_start"])
    st.e_end = _iptr(a["e_end"])
    st.e_bw = _dptr(a["e_bw"])
    st.e_onehot = _iptr(a["e_onehot"])
    st.e_has_pools = _iptr(a["e_has_pools"])
    st.e_rr = _iptr(a["e_rr"])
    st.e_last = _iptr(a["e_last"])
    st.e_issued = _iptr(a["e_issued"])
    st.e_busy = _iptr(a["e_busy"])
    st.n_pools = len(pack.pools)
    st.p_rate = _dptr(a["p_rate"])
    st.p_avail = _dptr(a["p_avail"])
    st.p_consumed = _dptr(a["p_consumed"])
    st.n_in = len(cfg.inputs)
    st.in_fifo = _iptr(a["in_fifo"])
    st.in_rate = _dptr(a["in_rate"])
    st.n_out = len(cfg.outputs)
    st.out_fifo = _iptr(a["out_fifo"])
    st.out_rate = _dptr(a["out_rate"])
    st.fab_total = total
    # Same product FabricSim.remaining computes every call.
    st.fab_done_tol = 1e-6 * max(1.0, total)
    st.fab_depth = int(cfg.pipeline_depth)
    st.fab_firings = _dptr(a["fab_firings"])
    st.fab_stalls = _iptr(a["fab_stalls"])
    st.pipe_cap = len(a["pipe_due"])
    st.pipe_due = _iptr(a["pipe_due"])
    st.pipe_count = _dptr(a["pipe_count"])
    st.pipe_head = _iptr(a["pipe_head"])
    st.pipe_len = _iptr(a["pipe_len"])
    st.exact = 1 if exact else 0
    st.hard_cap = hard_cap
    st.measure_window = measure_window
    st.now = _iptr(a["now"])
    st.last_progress = _iptr(a["last_progress"])
    st.last_firings = _dptr(a["last_firings"])
    st.window_firings = _dptr(a["window_firings"])
    st.window_cycle = _iptr(a["window_cycle"])
    return st


def _sync_back(pack: TilePack) -> None:
    """Write the packed state back into the component objects."""
    a = pack.arrays
    for i, stream in enumerate(pack.streams):
        stream.moved = float(a["s_moved"][i])
    for i, fifo in enumerate(pack.fifos):
        fifo.level = float(a["f_level"][i])
    for i, engine in enumerate(pack.engines):
        engine._rr = int(a["e_rr"][i])
        last = int(a["e_last"][i])
        engine._last_issued = None if last < 0 else pack.streams[last]
        engine.issued_cycles = int(a["e_issued"][i])
        engine.busy_cycles = int(a["e_busy"][i])
    for i, pool in enumerate(pack.pools):
        pool.available = float(a["p_avail"][i])
        pool.consumed_total = float(a["p_consumed"][i])
    fabric = pack.fabric
    fabric.firings = float(a["fab_firings"][0])
    fabric.stall_cycles = int(a["fab_stalls"][0])
    head = int(a["pipe_head"][0])
    length = int(a["pipe_len"][0])
    cap = len(a["pipe_due"])
    fabric._pipeline = [
        (
            int(a["pipe_due"][(head + k) % cap]),
            float(a["pipe_count"][(head + k) % cap]),
        )
        for k in range(length)
    ]


def run_packed_region(
    pack: TilePack,
    exact: bool,
    hard_cap: int,
    measure_window: int,
) -> Optional[VectorOutcome]:
    """Step one packed tile to completion in the compiled kernel.

    Returns ``None`` when the kernel is unavailable.  On return the
    component objects hold the same state an object-core run would
    have left (bit-identical floats), and the outcome carries the
    driver-loop fields the caller needs for extrapolation/raising.
    """
    kernel = load_kernel()
    if kernel is None:
        return None
    st = _build_struct(pack, exact, hard_cap, measure_window)
    status = int(
        kernel.step_region(ctypes.byref(st), _iptr(pack.scratch))
    )
    _sync_back(pack)
    a = pack.arrays
    return VectorOutcome(
        status=status,
        now=int(a["now"][0]),
        window_firings=float(a["window_firings"][0]),
        window_cycle=int(a["window_cycle"][0]),
        done=status == STATUS_DONE,
        hard_capped=status == STATUS_HARD_CAP,
        deadlocked=status == STATUS_DEADLOCK,
        stuck=status == STATUS_STUCK,
    )
