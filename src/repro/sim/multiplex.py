"""Temporal multiplexing: run a sequence of kernels on one overlay.

The paper's Q5 argues that microsecond reconfiguration enables "efficient
temporal multiplexing at very fine time scales" — switching the overlay
between applications costs only a configuration reload, versus >1 s for an
FPGA bitstream reflash.  This module executes a kernel *schedule sequence*
on one overlay, charging reconfiguration between kernels, and compares
against the reflash-per-kernel alternative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..adg import SysADG
from ..scheduler import Schedule
from .simulator import SimResult

#: Cycles to drain the fabric and reload a configuration through the
#: D-cache (one 64-bit word per ~4 cycles + pipeline restart).
RECONFIG_BASE_CYCLES = 1000
RECONFIG_CYCLES_PER_WORD = 4

#: Full-FPGA bitstream reflash (the HLS alternative), seconds.
FPGA_REFLASH_SECONDS = 1.3


def reconfiguration_cycles(schedule: Schedule) -> int:
    """Cycles to switch the overlay to ``schedule``'s configuration."""
    return RECONFIG_BASE_CYCLES + RECONFIG_CYCLES_PER_WORD * (
        schedule.mdfg.config_words
    )


@dataclass
class MultiplexResult:
    """Outcome of running a kernel sequence on one overlay."""

    overlay: str
    kernels: List[str]
    compute_cycles: float
    reconfig_cycles: float
    switches: int
    per_kernel: Dict[str, SimResult]

    @property
    def total_cycles(self) -> float:
        return self.compute_cycles + self.reconfig_cycles

    @property
    def reconfig_overhead(self) -> float:
        """Fraction of total time spent reconfiguring."""
        if self.total_cycles <= 0:
            return 0.0
        return self.reconfig_cycles / self.total_cycles

    def seconds(self, frequency_mhz: float) -> float:
        return self.total_cycles / (frequency_mhz * 1e6)

    def reflash_alternative_seconds(self, frequency_mhz: float) -> float:
        """The same sequence if every switch were an FPGA reflash."""
        return (
            self.compute_cycles / (frequency_mhz * 1e6)
            + self.switches * FPGA_REFLASH_SECONDS
        )


def run_sequence(
    schedules: Sequence[Schedule],
    sysadg: SysADG,
    repeats: int = 1,
    core: Optional[str] = None,
) -> MultiplexResult:
    """Execute ``schedules`` back-to-back on the overlay, ``repeats`` times.

    Consecutive runs of the *same* configuration skip the reconfiguration
    (the overlay is already programmed).  The unique configurations in the
    sequence are stepped as one :func:`~repro.sim.batch.simulate_batch`
    pass (first-appearance order), so the compiled stepping kernel warms
    once for the whole sequence.
    """
    from .batch import simulate_batch

    if not schedules:
        raise ValueError("need at least one schedule")
    unique: Dict[str, Schedule] = {}
    for schedule in schedules:
        key = f"{schedule.mdfg.workload}/{schedule.mdfg.variant}"
        if key not in unique:
            unique[key] = schedule
    stepped = simulate_batch(
        [(schedule, sysadg) for schedule in unique.values()], core=core
    )
    per_kernel: Dict[str, SimResult] = dict(zip(unique, stepped))
    compute = 0.0
    reconfig = 0.0
    switches = 0
    current_config: Optional[str] = None
    for _ in range(repeats):
        for schedule in schedules:
            key = f"{schedule.mdfg.workload}/{schedule.mdfg.variant}"
            sim = per_kernel[key]
            # simulate_schedule already charges one config load; separate
            # the compute portion so switching costs are explicit here.
            compute += sim.cycles - schedule.mdfg.config_words
            if current_config != key:
                reconfig += reconfiguration_cycles(schedule)
                switches += 1
                current_config = key
    return MultiplexResult(
        overlay=sysadg.name,
        kernels=[s.mdfg.workload for s in schedules],
        compute_cycles=compute,
        reconfig_cycles=reconfig,
        switches=switches,
        per_kernel=per_kernel,
    )
