"""``simulate_batch``: step many (schedule, overlay) pairs in one pass.

This is the shape the layers above the simulator actually consume:
``repro.serve``'s simulate op answers per-overlay workload sets, soak
campaigns replay thousands of fuzz regions, and DSE trial batches score
many candidates against the same workload list.  One batch call

* warms the compiled stepping kernel once (compile + ``dlopen`` are
  process-global, so the first region pays and the rest reuse it),
* deduplicates identical (overlay, workload, options) pairs by content
  key — duplicate-heavy batches (serve load mixes, multi-seed DSE)
  collapse to one stepped region each, and
* returns results byte-identical to N serial ``simulate_schedule``
  calls (golden-tested), so callers can swap loops for batches without
  re-validating anything.

``simulate_workloads_jobs`` lifts the same API onto :mod:`repro.jobs`:
(overlay, workload-name) pairs are sharded with the deterministic
:class:`~repro.jobs.ShardPlan` and each shard worker rebuilds the
design once, schedules its names, and steps them with one
``simulate_batch`` call — the kernel build and design deserialization
amortize per shard instead of per region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .simulator import SimResult, simulate_schedule

__all__ = ["simulate_batch", "simulate_workloads_jobs"]


def _options(
    onehot_bypass: bool,
    exact: bool,
    max_exact_cycles: int,
    measure_window: int,
    core: Optional[str],
) -> Dict[str, Any]:
    return {
        "onehot_bypass": onehot_bypass,
        "exact": exact,
        "max_exact_cycles": max_exact_cycles,
        "measure_window": measure_window,
        "core": core,
    }


def simulate_batch(
    items: Sequence[Tuple[Any, Any]],
    onehot_bypass: bool = True,
    exact: bool = False,
    max_exact_cycles: int = 200_000,
    measure_window: int = 4_000,
    core: Optional[str] = None,
    dedupe: bool = True,
) -> List[SimResult]:
    """Simulate ``[(schedule, sysadg), ...]`` pairs in one batched pass.

    Results are byte-identical to calling :func:`simulate_schedule` on
    each pair serially with the same options; ``dedupe=True`` (default)
    answers repeated (overlay, workload, variant, options) pairs from
    the first stepped instance.
    """
    from ..sim.ckernel import load_kernel
    from ..profile.memo import sim_key

    opts = _options(
        onehot_bypass, exact, max_exact_cycles, measure_window, core
    )
    if core != "object":
        load_kernel()  # warm the compiled kernel once for the batch
    results: List[Optional[SimResult]] = [None] * len(items)
    seen: Dict[str, SimResult] = {}
    for i, (schedule, sysadg) in enumerate(items):
        key = None
        if dedupe:
            key = sim_key(schedule, sysadg, **opts)
            cached = seen.get(key)
            if cached is not None:
                results[i] = cached
                continue
        result = simulate_schedule(schedule, sysadg, **opts)
        if key is not None:
            seen[key] = result
        results[i] = result
    return results  # type: ignore[return-value]


@dataclass(frozen=True)
class _BatchShard:
    """One shard of a jobs-backed batch (module-level: pickles cleanly)."""

    index: int
    design_doc: Dict[str, Any]
    workloads: Tuple[str, ...]
    options: Tuple[Tuple[str, Any], ...]


def _run_batch_shard(job: _BatchShard) -> List[Optional[SimResult]]:
    """Worker entry: rebuild the design once, batch-step the shard."""
    from ..adg import sysadg_from_dict
    from ..compiler import generate_variants
    from ..scheduler import schedule_workload
    from ..workloads import get_workload

    sysadg = sysadg_from_dict(job.design_doc)
    opts = dict(job.options)
    items = []
    slots: List[Optional[int]] = []
    for name in job.workloads:
        schedule = schedule_workload(
            generate_variants(get_workload(name)), sysadg.adg, sysadg.params
        )
        if schedule is None:
            slots.append(None)
        else:
            slots.append(len(items))
            items.append((schedule, sysadg))
    stepped = simulate_batch(items, **opts)
    return [None if s is None else stepped[s] for s in slots]


def simulate_workloads_jobs(
    sysadg: Any,
    workloads: Sequence[str],
    workers: int = 1,
    shards: Optional[int] = None,
    onehot_bypass: bool = True,
    exact: bool = False,
    max_exact_cycles: int = 200_000,
    measure_window: int = 4_000,
    core: Optional[str] = None,
) -> List[Optional[SimResult]]:
    """Batch-simulate named workloads on one overlay via ``repro.jobs``.

    The workload list is split with the shard-count-invariant
    :class:`~repro.jobs.ShardPlan`; each shard runs as one job (serial
    in-process for ``workers=1``, else on the process pool with its
    serial-fallback rule) and amortizes design rebuild + kernel warm-up
    across its shard.  Returns one entry per input name, in input
    order; unmappable workloads yield ``None``.  Results are
    byte-identical for any (workers, shards) split.
    """
    from ..adg import sysadg_to_dict
    from ..jobs import (
        FaultPolicy,
        InProcessExecutor,
        JobRunner,
        ProcessPoolJobExecutor,
        ShardPlan,
    )

    names = list(workloads)
    if not names:
        return []
    shards_n = shards if shards is not None else max(1, int(workers))
    plan = ShardPlan(total=len(names), shards=min(shards_n, len(names)))
    design_doc = sysadg_to_dict(sysadg)
    options = tuple(
        sorted(
            _options(
                onehot_bypass, exact, max_exact_cycles, measure_window, core
            ).items()
        )
    )
    jobs = [
        _BatchShard(
            index=i,
            design_doc=design_doc,
            workloads=tuple(chunk),
            options=options,
        )
        for i, chunk in enumerate(plan.scatter(names))
        if chunk
    ]
    executor = (
        InProcessExecutor()
        if int(workers) <= 1
        else ProcessPoolJobExecutor(int(workers))
    )
    runner = JobRunner(
        executor=executor,
        policy=FaultPolicy(mode="fail"),
        name="sim.batch",
    )
    outcomes = runner.run(
        _run_batch_shard, jobs, label_fn=lambda job: job.index
    )
    results: List[Optional[SimResult]] = []
    for outcome in sorted(outcomes, key=lambda o: o.payload.index):
        results.extend(outcome.result)
    return results
