"""Architecture description graphs: tile fabric + system parameters."""

from .capability import (
    FuCap,
    cap_for,
    caps_for_dtype,
    summarize_caps,
    universal_caps,
)
from .graph import ADG, AdgError
from .nodes import (
    AdgNode,
    DmaEngine,
    ENGINE_KINDS,
    FABRIC_KINDS,
    GenerateEngine,
    InputPortHW,
    NodeKind,
    OutputPortHW,
    ProcessingElement,
    RecurrenceEngine,
    RegisterEngine,
    SpadEngine,
    Switch,
)
from .system import SysADG, SystemParams, system_param_space
from .builders import general_overlay, mesh_adg, seed_adg, seed_for_workloads
from .render import render_adg, render_sysadg
from .serialize import (
    SerializationError,
    adg_from_dict,
    adg_to_dict,
    load_sysadg,
    save_sysadg,
    sysadg_from_dict,
    sysadg_to_dict,
)

__all__ = [
    "ADG",
    "AdgError",
    "AdgNode",
    "DmaEngine",
    "ENGINE_KINDS",
    "FABRIC_KINDS",
    "FuCap",
    "GenerateEngine",
    "InputPortHW",
    "NodeKind",
    "OutputPortHW",
    "ProcessingElement",
    "RecurrenceEngine",
    "RegisterEngine",
    "SpadEngine",
    "Switch",
    "SysADG",
    "SystemParams",
    "SerializationError",
    "adg_from_dict",
    "adg_to_dict",
    "cap_for",
    "caps_for_dtype",
    "general_overlay",
    "mesh_adg",
    "seed_adg",
    "load_sysadg",
    "render_adg",
    "render_sysadg",
    "save_sysadg",
    "seed_for_workloads",
    "sysadg_from_dict",
    "sysadg_to_dict",
    "summarize_caps",
    "system_param_space",
    "universal_caps",
]
