"""ASCII rendering of ADGs — a quick look at what the DSE produced.

Prints the tile in three bands, mirroring Fig. 2(c)/Fig. 8: the memory
side (engines), the port row, and the compute fabric with per-node
annotations (capabilities, widths, degree).
"""

from __future__ import annotations

from typing import List

from .graph import ADG
from .nodes import (
    DmaEngine,
    GenerateEngine,
    InputPortHW,
    NodeKind,
    OutputPortHW,
    ProcessingElement,
    RecurrenceEngine,
    RegisterEngine,
    SpadEngine,
)
from .system import SysADG


def _pe_label(adg: ADG, pe: ProcessingElement) -> str:
    ops = sorted({c.op.value for c in pe.caps})
    shown = ",".join(ops[:3]) + ("..." if len(ops) > 3 else "")
    return f"{pe.name}[{pe.width_bits}b:{shown or 'empty'}]"


def _engine_label(engine) -> str:
    if isinstance(engine, DmaEngine):
        extra = f"{engine.bandwidth_bytes}B" + ("/ind" if engine.indirect else "")
    elif isinstance(engine, SpadEngine):
        extra = f"{engine.capacity_bytes // 1024}KiB" + (
            "/ind" if engine.indirect else ""
        )
    elif isinstance(engine, RecurrenceEngine):
        extra = f"{engine.buffer_bytes}B buf"
    elif isinstance(engine, (GenerateEngine, RegisterEngine)):
        extra = f"{engine.bandwidth_bytes}B"
    else:  # pragma: no cover - defensive
        extra = ""
    return f"{engine.name}({extra})"


def render_adg(adg: ADG, width: int = 78) -> str:
    """Multi-line ASCII summary of one tile ADG."""
    lines: List[str] = [adg.summary()]

    lines.append("memory side:")
    lines.append(
        "  " + "  ".join(_engine_label(e) for e in adg.engines)
    )

    in_ports = "  ".join(
        f"{p.name}<{p.width_bytes}B,{len(adg.predecessors(p.node_id))}fed>"
        for p in adg.in_ports
    )
    out_ports = "  ".join(
        f"{p.name}<{p.width_bytes}B>" for p in adg.out_ports
    )
    lines.append("input ports:")
    lines.extend(_wrap(in_ports, width))
    lines.append("fabric:")
    pes = "  ".join(_pe_label(adg, pe) for pe in adg.pes)
    lines.extend(_wrap(pes, width))
    switches = "  ".join(
        f"{s.name}(r{adg.radix(s.node_id)})" for s in adg.switches
    )
    lines.extend(_wrap(switches, width))
    lines.append("output ports:")
    lines.extend(_wrap(out_ports, width))
    return "\n".join(lines)


def render_sysadg(sysadg: SysADG) -> str:
    """System-level view: parameters + one rendered tile."""
    p = sysadg.params
    header = (
        f"=== {sysadg.name} ===\n"
        f"tiles={p.num_tiles}  L2={p.l2_kib}KiB x {p.l2_banks} banks  "
        f"NoC={p.noc_bytes_per_cycle}B/cyc  DRAMx{p.dram_channels}  "
        f"@{p.frequency_mhz}MHz\n"
        f"--- per-tile accelerator ---"
    )
    return header + "\n" + render_adg(sysadg.adg)


def _wrap(text: str, width: int) -> List[str]:
    words = text.split("  ")
    lines: List[str] = []
    current = "  "
    for word in words:
        if not word:
            continue
        if len(current) + len(word) + 2 > width and current.strip():
            lines.append(current)
            current = "  "
        current += word + "  "
    if current.strip():
        lines.append(current)
    return lines or ["  (none)"]
