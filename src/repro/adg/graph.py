"""The ADG container: nodes, directed links, mutation, and validation.

Structure follows Fig. 4(b) of the paper: the *fabric side* (input ports ->
switches/PEs -> output ports) is circuit-switched and routable, while the
*memory side* is point-to-point — each stream engine owns direct links to a
subset of ports.  Which engine reaches which ports is precisely the spatial
memory design space the DSE explores.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .nodes import (
    AdgNode,
    DmaEngine,
    ENGINE_KINDS,
    FABRIC_KINDS,
    GenerateEngine,
    InputPortHW,
    NodeKind,
    OutputPortHW,
    ProcessingElement,
    RecurrenceEngine,
    RegisterEngine,
    SpadEngine,
    Switch,
)


class AdgError(ValueError):
    """Raised when an ADG violates a structural invariant."""


#: Legal (source-kind, destination-kind) pairs for ADG links.
_LEGAL_LINKS: Set[Tuple[NodeKind, NodeKind]] = set()
for _engine in ENGINE_KINDS:
    _LEGAL_LINKS.add((_engine, NodeKind.IN_PORT))
    _LEGAL_LINKS.add((NodeKind.OUT_PORT, _engine))
for _src in (NodeKind.IN_PORT, NodeKind.PE, NodeKind.SWITCH):
    for _dst in (NodeKind.PE, NodeKind.SWITCH, NodeKind.OUT_PORT):
        _LEGAL_LINKS.add((_src, _dst))
_LEGAL_LINKS.discard((NodeKind.IN_PORT, NodeKind.OUT_PORT))
# Pass-through without any fabric hop is still representable via a switch.


class ADG:
    """One tile's architecture description graph (mutable, clonable)."""

    def __init__(self) -> None:
        self._nodes: Dict[int, AdgNode] = {}
        self._out: Dict[int, Set[int]] = {}
        self._in: Dict[int, Set[int]] = {}
        self._next_id = 0
        #: monotonically increasing edit stamp; schedules cache against it.
        self.version = 0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_node(
        self,
        factory: Callable[[int], AdgNode],
        node_id: Optional[int] = None,
    ) -> int:
        """Add a node; ``node_id`` pins an explicit id (deserialization —
        keeping ids stable lets schedules survive a save/load round trip)."""
        if node_id is None:
            node_id = self._next_id
        elif node_id in self._nodes:
            raise AdgError(f"node id {node_id} already in use")
        self._next_id = max(self._next_id, node_id) + 1
        self._nodes[node_id] = factory(node_id)
        self._out[node_id] = set()
        self._in[node_id] = set()
        self.version += 1
        return node_id

    def add_pe(self, **kwargs) -> int:
        return self.add_node(lambda i: ProcessingElement(i, **kwargs))

    def add_switch(self, **kwargs) -> int:
        return self.add_node(lambda i: Switch(i, **kwargs))

    def add_in_port(self, **kwargs) -> int:
        return self.add_node(lambda i: InputPortHW(i, **kwargs))

    def add_out_port(self, **kwargs) -> int:
        return self.add_node(lambda i: OutputPortHW(i, **kwargs))

    def add_dma(self, **kwargs) -> int:
        return self.add_node(lambda i: DmaEngine(i, **kwargs))

    def add_spad(self, **kwargs) -> int:
        return self.add_node(lambda i: SpadEngine(i, **kwargs))

    def add_generate(self, **kwargs) -> int:
        return self.add_node(lambda i: GenerateEngine(i, **kwargs))

    def add_recurrence(self, **kwargs) -> int:
        return self.add_node(lambda i: RecurrenceEngine(i, **kwargs))

    def add_register(self, **kwargs) -> int:
        return self.add_node(lambda i: RegisterEngine(i, **kwargs))

    def add_link(self, src: int, dst: int) -> None:
        """Add a directed hardware link; validates endpoint kinds."""
        if src not in self._nodes or dst not in self._nodes:
            raise AdgError(f"link {src}->{dst} references unknown node")
        pair = (self._nodes[src].kind, self._nodes[dst].kind)
        if pair not in _LEGAL_LINKS:
            raise AdgError(
                f"illegal link {self._nodes[src].name} -> {self._nodes[dst].name}"
            )
        self._out[src].add(dst)
        self._in[dst].add(src)
        self.version += 1

    def remove_link(self, src: int, dst: int) -> None:
        self._out.get(src, set()).discard(dst)
        self._in.get(dst, set()).discard(src)
        self.version += 1

    def remove_node(self, node_id: int) -> None:
        """Remove a node and every link touching it."""
        if node_id not in self._nodes:
            raise AdgError(f"cannot remove unknown node {node_id}")
        for dst in list(self._out[node_id]):
            self._in[dst].discard(node_id)
        for src in list(self._in[node_id]):
            self._out[src].discard(node_id)
        del self._out[node_id]
        del self._in[node_id]
        del self._nodes[node_id]
        self.version += 1

    def replace_node(self, node_id: int, **changes) -> None:
        """Replace a node's parameters in place (links unchanged)."""
        if node_id not in self._nodes:
            raise AdgError(f"cannot replace unknown node {node_id}")
        self._nodes[node_id] = replace(self._nodes[node_id], **changes)
        self.version += 1

    def clone(self) -> "ADG":
        other = ADG()
        other._nodes = dict(self._nodes)
        other._out = {k: set(v) for k, v in self._out.items()}
        other._in = {k: set(v) for k, v in self._in.items()}
        other._next_id = self._next_id
        other.version = self.version
        return other

    def restore_counters(self, next_id: int, version: int) -> None:
        """Pin the id allocator and edit stamp after a deserialization.

        ``adg_from_dict`` recomputes ``_next_id`` as max(id)+1 and counts
        ``version`` up from zero, but an ADG that lived through mutations
        may hold a higher allocator (removed high ids) and edit stamp.
        Checkpoint/resume restores both so a resumed explorer allocates the
        same ids the uninterrupted run would."""
        if next_id < self._next_id:
            raise AdgError(
                f"next_id {next_id} below live allocator {self._next_id}"
            )
        self._next_id = next_id
        self.version = version

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> AdgNode:
        return self._nodes[node_id]

    def has_node(self, node_id: int) -> bool:
        return node_id in self._nodes

    def has_link(self, src: int, dst: int) -> bool:
        return dst in self._out.get(src, ())

    def nodes(self) -> Iterator[AdgNode]:
        """Nodes in ascending id order.

        Sorted (rather than insertion) order keeps float accumulations over
        the graph bit-identical between a live ADG and its serialize
        round-trip, which checkpoint/resume relies on.
        """
        return iter(self._nodes[i] for i in sorted(self._nodes))

    def node_ids(self) -> List[int]:
        return sorted(self._nodes)

    def successors(self, node_id: int) -> Set[int]:
        return self._out.get(node_id, set())

    def predecessors(self, node_id: int) -> Set[int]:
        return self._in.get(node_id, set())

    def links(self) -> List[Tuple[int, int]]:
        return sorted(
            (src, dst) for src, dsts in self._out.items() for dst in dsts
        )

    def of_kind(self, kind: NodeKind) -> List[AdgNode]:
        return sorted(
            (n for n in self._nodes.values() if n.kind is kind),
            key=lambda n: n.node_id,
        )

    @property
    def pes(self) -> List[ProcessingElement]:
        return self.of_kind(NodeKind.PE)

    @property
    def switches(self) -> List[Switch]:
        return self.of_kind(NodeKind.SWITCH)

    @property
    def in_ports(self) -> List[InputPortHW]:
        return self.of_kind(NodeKind.IN_PORT)

    @property
    def out_ports(self) -> List[OutputPortHW]:
        return self.of_kind(NodeKind.OUT_PORT)

    @property
    def spads(self) -> List[SpadEngine]:
        return self.of_kind(NodeKind.SPAD)

    @property
    def dmas(self) -> List[DmaEngine]:
        return self.of_kind(NodeKind.DMA)

    @property
    def engines(self) -> List[AdgNode]:
        return sorted(
            (n for n in self._nodes.values() if n.kind in ENGINE_KINDS),
            key=lambda n: n.node_id,
        )

    def fabric_ids(self) -> List[int]:
        """Node ids routable on the fabric side (ports, PEs, switches)."""
        routable = FABRIC_KINDS | {NodeKind.IN_PORT, NodeKind.OUT_PORT}
        return sorted(
            i for i, n in self._nodes.items() if n.kind in routable
        )

    def radix(self, node_id: int) -> int:
        """Total degree of a node (drives switch resource cost)."""
        return len(self._out.get(node_id, ())) + len(self._in.get(node_id, ()))

    def avg_switch_radix(self) -> float:
        switches = self.switches
        if not switches:
            return 0.0
        return sum(self.radix(s.node_id) for s in switches) / len(switches)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raises :class:`AdgError`."""
        for src, dsts in self._out.items():
            for dst in dsts:
                pair = (self._nodes[src].kind, self._nodes[dst].kind)
                if pair not in _LEGAL_LINKS:
                    raise AdgError(
                        f"illegal link {self._nodes[src].name} -> "
                        f"{self._nodes[dst].name}"
                    )
        for port in self.in_ports:
            feeders = {
                self._nodes[p].kind for p in self._in[port.node_id]
            }
            if feeders and not feeders & ENGINE_KINDS:
                raise AdgError(f"{port.name} has no stream-engine feeder")
        for node in self._nodes.values():
            if isinstance(node, SpadEngine) and node.capacity_bytes <= 0:
                raise AdgError(f"{node.name} has non-positive capacity")
            if isinstance(node, ProcessingElement) and node.width_bits <= 0:
                raise AdgError(f"{node.name} has non-positive width")

    def summary(self) -> str:
        return (
            f"ADG(pe={len(self.pes)}, sw={len(self.switches)}, "
            f"ip={len(self.in_ports)}, op={len(self.out_ports)}, "
            f"spad={len(self.spads)}, dma={len(self.dmas)}, "
            f"links={len(self.links())})"
        )
