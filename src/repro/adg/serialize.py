"""JSON (de)serialization of ADGs and system designs.

A generated overlay is a long-lived artifact — the whole point of the
paper's flow is that one DSE run serves many future applications — so
designs must round-trip to disk.  The format is a versioned, plain-JSON
document: one record per node with its kind and parameters, a link list,
and the system parameters.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Any, Dict

from ..ir import Op
from .capability import FuCap
from .graph import ADG, AdgError
from .nodes import (
    DmaEngine,
    GenerateEngine,
    InputPortHW,
    NodeKind,
    OutputPortHW,
    ProcessingElement,
    RecurrenceEngine,
    RegisterEngine,
    SpadEngine,
    Switch,
)
from .system import SysADG, SystemParams

FORMAT_VERSION = 1


class SerializationError(ValueError):
    """Raised on malformed or version-incompatible documents."""


def _cap_to_json(cap: FuCap) -> Dict[str, Any]:
    return {"op": cap.op.value, "is_float": cap.is_float, "bits": cap.bits}


def _cap_from_json(doc: Dict[str, Any]) -> FuCap:
    return FuCap(Op(doc["op"]), bool(doc["is_float"]), int(doc["bits"]))


def _node_to_json(node) -> Dict[str, Any]:
    doc: Dict[str, Any] = {"id": node.node_id, "kind": node.kind.value}
    if isinstance(node, ProcessingElement):
        doc.update(
            caps=[_cap_to_json(c) for c in sorted(node.caps, key=lambda c: c.name)],
            width_bits=node.width_bits,
            max_delay_fifo=node.max_delay_fifo,
        )
    elif isinstance(node, Switch):
        doc.update(width_bits=node.width_bits)
    elif isinstance(node, InputPortHW):
        doc.update(
            width_bytes=node.width_bytes,
            fifo_depth=node.fifo_depth,
            supports_padding=node.supports_padding,
            supports_meta=node.supports_meta,
        )
    elif isinstance(node, OutputPortHW):
        doc.update(width_bytes=node.width_bytes, fifo_depth=node.fifo_depth)
    elif isinstance(node, DmaEngine):
        doc.update(
            bandwidth_bytes=node.bandwidth_bytes,
            indirect=node.indirect,
            rob_entries=node.rob_entries,
        )
    elif isinstance(node, SpadEngine):
        doc.update(
            capacity_bytes=node.capacity_bytes,
            read_bandwidth=node.read_bandwidth,
            write_bandwidth=node.write_bandwidth,
            indirect=node.indirect,
        )
    elif isinstance(node, GenerateEngine):
        doc.update(bandwidth_bytes=node.bandwidth_bytes)
    elif isinstance(node, RecurrenceEngine):
        doc.update(
            bandwidth_bytes=node.bandwidth_bytes, buffer_bytes=node.buffer_bytes
        )
    elif isinstance(node, RegisterEngine):
        doc.update(bandwidth_bytes=node.bandwidth_bytes)
    else:  # pragma: no cover - defensive
        raise SerializationError(f"unknown node type {type(node).__name__}")
    return doc


_FACTORIES = {
    "pe": lambda i, d: ProcessingElement(
        i,
        caps=frozenset(_cap_from_json(c) for c in d["caps"]),
        width_bits=d["width_bits"],
        max_delay_fifo=d["max_delay_fifo"],
    ),
    "sw": lambda i, d: Switch(i, width_bits=d["width_bits"]),
    "ip": lambda i, d: InputPortHW(
        i,
        width_bytes=d["width_bytes"],
        fifo_depth=d["fifo_depth"],
        supports_padding=d["supports_padding"],
        supports_meta=d["supports_meta"],
    ),
    "op": lambda i, d: OutputPortHW(
        i, width_bytes=d["width_bytes"], fifo_depth=d["fifo_depth"]
    ),
    "dma": lambda i, d: DmaEngine(
        i,
        bandwidth_bytes=d["bandwidth_bytes"],
        indirect=d["indirect"],
        rob_entries=d["rob_entries"],
    ),
    "spad": lambda i, d: SpadEngine(
        i,
        capacity_bytes=d["capacity_bytes"],
        read_bandwidth=d["read_bandwidth"],
        write_bandwidth=d["write_bandwidth"],
        indirect=d["indirect"],
    ),
    "gen": lambda i, d: GenerateEngine(i, bandwidth_bytes=d["bandwidth_bytes"]),
    "rec": lambda i, d: RecurrenceEngine(
        i, bandwidth_bytes=d["bandwidth_bytes"], buffer_bytes=d["buffer_bytes"]
    ),
    "reg": lambda i, d: RegisterEngine(i, bandwidth_bytes=d["bandwidth_bytes"]),
}


def adg_to_dict(adg: ADG) -> Dict[str, Any]:
    return {
        "version": FORMAT_VERSION,
        "nodes": [_node_to_json(adg.node(i)) for i in adg.node_ids()],
        "links": [list(link) for link in adg.links()],
    }


def adg_from_dict(doc: Dict[str, Any]) -> ADG:
    if doc.get("version") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version {doc.get('version')!r}"
        )
    adg = ADG()
    for node_doc in doc["nodes"]:
        kind = node_doc.get("kind")
        factory = _FACTORIES.get(kind)
        if factory is None:
            raise SerializationError(f"unknown node kind {kind!r}")
        adg.add_node(
            lambda i, d=node_doc, f=factory: f(i, d),
            node_id=int(node_doc["id"]),
        )
    for src, dst in doc["links"]:
        try:
            adg.add_link(int(src), int(dst))
        except AdgError as exc:
            raise SerializationError(str(exc)) from exc
    adg.validate()
    return adg


def sysadg_to_dict(sysadg: SysADG) -> Dict[str, Any]:
    return {
        "version": FORMAT_VERSION,
        "name": sysadg.name,
        "params": asdict(sysadg.params),
        "adg": adg_to_dict(sysadg.adg),
    }


def sysadg_from_dict(doc: Dict[str, Any]) -> SysADG:
    if doc.get("version") != FORMAT_VERSION:
        raise SerializationError(
            f"unsupported format version {doc.get('version')!r}"
        )
    return SysADG(
        adg=adg_from_dict(doc["adg"]),
        params=SystemParams(**doc["params"]),
        name=doc.get("name", "overlay"),
    )


def save_sysadg(sysadg: SysADG, path: str) -> None:
    """Write a system design to ``path`` as JSON."""
    with open(path, "w") as f:
        json.dump(sysadg_to_dict(sysadg), f, indent=2, sort_keys=True)


def load_sysadg(path: str) -> SysADG:
    """Load a system design previously written by :func:`save_sysadg`."""
    with open(path) as f:
        doc = json.load(f)
    return sysadg_from_dict(doc)
