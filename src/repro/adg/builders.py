"""Topology builders: mesh CGRAs, the hand-designed General overlay, and
DSE seed designs.

The General overlay follows Table III's right column: a 4x6 PE mesh with 35
switches, every functional unit at maximum (512-bit) vectorization width, a
32 KiB indirect-capable scratchpad, one generate/recurrence/register engine
each, and a fully-connected memory side (every engine reaches every port).
"""

from __future__ import annotations

import math

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from ..ir import DType, Op
from .capability import FuCap, caps_for_dtype, universal_caps
from .graph import ADG
from .system import SysADG, SystemParams


def mesh_adg(
    rows: int,
    cols: int,
    caps: FrozenSet[FuCap],
    width_bits: int = 64,
    in_port_widths: Sequence[int] = (8, 8, 8, 8),
    out_port_widths: Sequence[int] = (8, 8),
    spad_specs: Sequence[Tuple[int, int, bool]] = ((16384, 32, False),),
    dma_bandwidth: int = 32,
    dma_indirect: bool = True,
    with_generate: bool = True,
    with_recurrence: bool = True,
    with_register: bool = True,
    port_padding: bool = True,
) -> ADG:
    """Build a rows x cols PE mesh with a (rows+1) x (cols+1) switch grid.

    Every PE connects bidirectionally to its four corner switches; switches
    connect to their grid neighbors; input ports feed the top switch row and
    output ports drain the bottom row.  The memory side is fully connected
    (every engine linked to every port) — the spatial-memory DSE later
    *prunes* this, which is exactly the Fig. 4(a) -> 4(b) transition.

    Args:
        spad_specs: one (capacity_bytes, bandwidth, indirect) per scratchpad.
    """
    adg = ADG()
    sw: Dict[Tuple[int, int], int] = {}
    for r in range(rows + 1):
        for c in range(cols + 1):
            sw[(r, c)] = adg.add_switch(width_bits=width_bits)
    # Down-flowing switch mesh: values enter at the top row, progress
    # downward, and drain at the bottom row.  Horizontal links are
    # bidirectional so any column can reach any port row position.
    for r in range(rows + 1):
        for c in range(cols + 1):
            if c + 1 <= cols:
                adg.add_link(sw[(r, c)], sw[(r, c + 1)])
                adg.add_link(sw[(r, c + 1)], sw[(r, c)])
            if r + 1 <= rows:
                adg.add_link(sw[(r, c)], sw[(r + 1, c)])
    # Each PE reads operands from its north/west corner switches and writes
    # to its south-east corner, so dataflow chains can progress both down
    # and across the array.
    for r in range(rows):
        for c in range(cols):
            pe = adg.add_pe(caps=caps, width_bits=width_bits)
            for corner in ((r, c), (r, c + 1), (r + 1, c)):
                adg.add_link(sw[corner], pe)
            adg.add_link(pe, sw[(r + 1, c + 1)])

    in_ports = []
    for idx, width in enumerate(in_port_widths):
        port = adg.add_in_port(
            width_bytes=width,
            supports_padding=port_padding,
            supports_meta=True,
        )
        in_ports.append(port)
        adg.add_link(port, sw[(0, idx % (cols + 1))])
    out_ports = []
    for idx, width in enumerate(out_port_widths):
        port = adg.add_out_port(width_bytes=width)
        out_ports.append(port)
        adg.add_link(sw[(rows, idx % (cols + 1))], port)

    engines = [adg.add_dma(bandwidth_bytes=dma_bandwidth, indirect=dma_indirect)]
    for capacity, bandwidth, indirect in spad_specs:
        engines.append(
            adg.add_spad(
                capacity_bytes=capacity,
                read_bandwidth=bandwidth,
                write_bandwidth=bandwidth,
                indirect=indirect,
            )
        )
    if with_generate:
        engines.append(adg.add_generate(bandwidth_bytes=8))
    if with_recurrence:
        engines.append(adg.add_recurrence(bandwidth_bytes=32, buffer_bytes=4096))
    if with_register:
        engines.append(adg.add_register())
    for engine in engines:
        for port in in_ports:
            adg.add_link(engine, port)
        for port in out_ports:
            adg.add_link(port, engine)
    adg.validate()
    return adg


def general_overlay(num_tiles: int = 4) -> SysADG:
    """The hand-designed General overlay of Table III (right column).

    24 universal PEs, 35 switches, 512-bit datapaths, 224 B/cyc of input
    port bandwidth and 160 B/cyc of output, one 32 KiB indirect scratchpad,
    and all three auxiliary engines.  At this cost only ~4 tiles fit the
    XCVU9P (Q1), with a 4-bank 512 KiB L2 and a 32-byte NoC.
    """
    adg = mesh_adg(
        rows=4,
        cols=6,
        caps=universal_caps(),
        width_bits=512,
        # 224 B/cyc of input and 160 B/cyc of output bandwidth (Table III),
        # split across enough ports for high-fan-in kernels (stencils).
        in_port_widths=(64, 32, 32, 16, 16, 16, 8, 8, 8, 8, 8, 4, 4),
        out_port_widths=(64, 32, 16, 16, 8, 8, 8, 8),
        spad_specs=((32 * 1024, 32, True),),
        dma_bandwidth=64,
        dma_indirect=True,
    )
    params = SystemParams(
        num_tiles=num_tiles,
        l2_banks=4,
        l2_kib=512,
        noc_bytes_per_cycle=32,
    )
    return SysADG(adg=adg, params=params, name="general-OG")


def seed_adg(
    dtypes: Iterable[DType],
    ops: Iterable[Op],
    width_bits: int = 128,
    rows: int = 2,
    cols: int = 2,
    n_in_ports: int = 4,
    n_out_ports: int = 2,
    port_bytes: int = 16,
) -> ADG:
    """A modest starting point for the spatial DSE.

    A mesh whose PEs carry just the capabilities the target workloads need,
    with generous (fully-connected) memory-side links for the DSE to prune,
    one scratchpad, and all auxiliary engines.
    """
    caps: set = set()
    ops = list(ops)
    for dtype in dtypes:
        caps |= set(caps_for_dtype(dtype, ops))
    # Address/index arithmetic is always available at 64-bit integer.
    caps |= set(caps_for_dtype(DType("i64", 64, False), (Op.ADD, Op.MUL)))
    return mesh_adg(
        rows=rows,
        cols=cols,
        caps=frozenset(caps),
        width_bits=width_bits,
        in_port_widths=(port_bytes,) * n_in_ports,
        out_port_widths=(port_bytes,) * n_out_ports,
        spad_specs=((16384, 32, True),),
        dma_bandwidth=32,
    )


def seed_for_workloads(workloads, width_bits: int = 512) -> ADG:
    """Seed ADG sized so every workload's *least aggressive* variant maps.

    The DSE abandons any candidate where some workload has no schedulable
    variant, so the starting point must already fit the fattest scalar
    (unroll-1, memory read-modify-write) mDFG: enough PEs for its compute
    nodes and enough ports for its streams.  Everything beyond that is the
    explorer's job to grow or shrink.
    """
    from ..compiler import lower

    dtypes = {w.dtype for w in workloads}
    ops: set = set()
    need_pes = 1
    need_ivp = 1
    need_ovp = 1
    for w in workloads:
        for a in w.arrays:
            dtypes.add(w.array_dtype(a.name))
        ops |= set(w.op_counts())
        if any(s.is_reduction for s in w.statements):
            ops.add(Op.ADD)
        mdfg = lower(w, unroll=1, use_recurrence=False)
        need_pes = max(need_pes, len(mdfg.compute_nodes))
        need_ivp = max(need_ivp, len(mdfg.input_ports))
        need_ovp = max(need_ovp, len(mdfg.output_ports))
    if not ops:
        ops = {Op.ADD}
    # 50% slack over the strict minimum: greedy placement needs headroom
    # to route dense graphs (deep stencils) without stranding outputs.
    slack = math.ceil(need_pes * 1.5) + 1
    cols = max(2, math.ceil(math.sqrt(slack)))
    rows = max(2, math.ceil(slack / cols))
    return seed_adg(
        dtypes,
        ops,
        width_bits=width_bits,
        rows=rows,
        cols=cols,
        n_in_ports=need_ivp + 2,
        n_out_ports=need_ovp + 2,
        port_bytes=16,
    )
