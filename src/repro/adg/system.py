"""System-level ADG: the tile ADG plus SoC parameters (Section III-B).

The overlay is a homogeneous multi-tile: every tile holds one control core
plus one instance of the accelerator ADG, all sharing a banked inclusive L2
over a crossbar NoC, with DRAM behind it (Fig. 8).  The system design space
is {tile count, L2 banks, L2 capacity, NoC bandwidth}; DRAM channel count is
a platform property studied separately (Fig. 19).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, List, Tuple

from .graph import ADG


@dataclass(frozen=True)
class SystemParams:
    """SoC-level parameters explored by the system DSE."""

    num_tiles: int = 1
    l2_banks: int = 4
    l2_kib: int = 512
    noc_bytes_per_cycle: int = 32
    dram_channels: int = 1
    frequency_mhz: float = 92.87  # the paper's quad-tile floorplan clock
    #: Achieved fraction of peak DDR bandwidth: the TileLink DMA path of a
    #: soft SoC sustains well under peak on short, possibly strided bursts.
    dram_efficiency: float = 0.45

    def __post_init__(self) -> None:
        if self.num_tiles < 1:
            raise ValueError("num_tiles must be >= 1")
        if self.l2_banks < 1 or self.l2_banks & (self.l2_banks - 1):
            raise ValueError("l2_banks must be a positive power of two")
        if self.l2_kib < 64:
            raise ValueError("l2_kib must be at least 64 KiB")
        if self.noc_bytes_per_cycle < 8:
            raise ValueError("noc_bytes_per_cycle must be at least 8")
        if self.dram_channels < 1:
            raise ValueError("dram_channels must be >= 1")

    @property
    def l2_bytes(self) -> int:
        return self.l2_kib * 1024

    @property
    def l2_bank_bandwidth(self) -> int:
        """Bytes/cycle one L2 bank can serve (one SRAM beat per cycle)."""
        return 16

    @property
    def dram_bytes_per_cycle(self) -> float:
        """Aggregate DRAM bandwidth in bytes per overlay cycle.

        One DDR4-2400 channel delivers ~19.2 GB/s; normalized to the
        overlay clock this is ~19.2e9 / (f_MHz * 1e6) bytes per cycle.
        """
        per_channel = 19.2e9 / (self.frequency_mhz * 1e6)
        return per_channel * self.dram_channels * self.dram_efficiency


@dataclass
class SysADG:
    """A complete overlay design point: tile ADG + system parameters."""

    adg: ADG
    params: SystemParams = field(default_factory=SystemParams)
    name: str = "overlay"

    def clone(self) -> "SysADG":
        return SysADG(adg=self.adg.clone(), params=self.params, name=self.name)

    def with_params(self, **changes) -> "SysADG":
        return SysADG(
            adg=self.adg, params=replace(self.params, **changes), name=self.name
        )

    def validate(self) -> None:
        self.adg.validate()

    def summary(self) -> str:
        p = self.params
        return (
            f"{self.name}: tiles={p.num_tiles} l2={p.l2_kib}KiB"
            f"x{p.l2_banks}banks noc={p.noc_bytes_per_cycle}B "
            f"{self.adg.summary()}"
        )


def system_param_space(
    max_tiles: int = 16,
) -> Iterator[Tuple[int, int, int]]:
    """The exhaustive (l2_banks, l2_kib, noc_bytes) grid of the system DSE.

    Tile count is not enumerated here: it is derived from the FPGA resource
    budget for each candidate (Section V-A nests system DSE inside spatial
    DSE, choosing the largest tile count that fits).
    """
    for l2_banks in (1, 2, 4, 8, 16):
        for l2_kib in (128, 256, 512, 1024):
            for noc_bytes in (16, 32, 64):
                yield (l2_banks, l2_kib, noc_bytes)
