"""Hardware node types of the architecture description graph (ADG).

These mirror the primitives of Fig. 2(c) and Section III-B of the paper:
processing elements, switches, vector ports, and the five stream-engine
families (DMA, scratchpad, recurrence, generate, register).  Nodes are
*immutable*: parameter changes during DSE replace the node, which keeps
ADG cloning cheap and schedules easy to invalidate precisely.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import FrozenSet, Optional

from ..ir import DType, Op
from .capability import FuCap, cap_for


class NodeKind(enum.Enum):
    PE = "pe"
    SWITCH = "sw"
    IN_PORT = "ip"
    OUT_PORT = "op"
    DMA = "dma"
    SPAD = "spad"
    GENERATE = "gen"
    RECURRENCE = "rec"
    REGISTER = "reg"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Node kinds forming the compute fabric (routable side).
FABRIC_KINDS = frozenset({NodeKind.PE, NodeKind.SWITCH})

#: Node kinds that execute streams.
ENGINE_KINDS = frozenset(
    {
        NodeKind.DMA,
        NodeKind.SPAD,
        NodeKind.GENERATE,
        NodeKind.RECURRENCE,
        NodeKind.REGISTER,
    }
)


@dataclass(frozen=True)
class AdgNode:
    """Base hardware node; ``node_id`` is unique within one ADG."""

    node_id: int

    @property
    def kind(self) -> NodeKind:
        raise NotImplementedError

    @property
    def name(self) -> str:
        return f"{self.kind.value}{self.node_id}"


@dataclass(frozen=True)
class ProcessingElement(AdgNode):
    """A dedicated-dataflow PE.

    Attributes:
        caps: functional-unit capabilities (op x dtype-class pairs).
        width_bits: datapath width; when wider than a capability's scalar
            width the PE executes subword-SIMD (Section III-B).
        max_delay_fifo: deepest per-operand delay FIFO, used to balance
            operand arrival times (Section V-B, edge-delay preservation).
    """

    caps: FrozenSet[FuCap] = frozenset()
    width_bits: int = 64
    max_delay_fifo: int = 8

    @property
    def kind(self) -> NodeKind:
        return NodeKind.PE

    def supports(self, op: Op, dtype: DType, lanes: int = 1) -> bool:
        """Can this PE execute ``lanes`` lanes of ``op`` on ``dtype``?"""
        if cap_for(op, dtype) not in self.caps:
            return False
        return lanes * dtype.bits <= self.width_bits

    @property
    def simd_lanes(self) -> int:
        """Maximum subword lanes at 64-bit granularity."""
        return max(1, self.width_bits // 64)


@dataclass(frozen=True)
class Switch(AdgNode):
    """An operand-routing switch; radix comes from graph degree."""

    width_bits: int = 64

    @property
    def kind(self) -> NodeKind:
        return NodeKind.SWITCH


@dataclass(frozen=True)
class InputPortHW(AdgNode):
    """A vector input port: memory-side to fabric-side synchronization.

    Attributes:
        width_bytes: peak ingest rate (bytes/cycle).
        fifo_depth: elements buffered (bounds stationary replay and
            recurrence depth).
        supports_padding: can pad streams shorter than the vector width.
        supports_meta: carries stream-state metadata (loop-dimension
            completion flags, Section III-B).
    """

    width_bytes: int = 8
    fifo_depth: int = 4
    supports_padding: bool = False
    supports_meta: bool = False

    @property
    def kind(self) -> NodeKind:
        return NodeKind.IN_PORT


@dataclass(frozen=True)
class OutputPortHW(AdgNode):
    """A vector output port: fabric-side to memory-side."""

    width_bytes: int = 8
    fifo_depth: int = 4

    @property
    def kind(self) -> NodeKind:
        return NodeKind.OUT_PORT


@dataclass(frozen=True)
class DmaEngine(AdgNode):
    """Memory stream engine for the shared L2 / DRAM path.

    ``indirect`` enables parallel indirect access (requires reordering
    hardware, i.e. an ROB — Section III-B).
    """

    bandwidth_bytes: int = 32
    indirect: bool = False
    rob_entries: int = 16

    @property
    def kind(self) -> NodeKind:
        return NodeKind.DMA


@dataclass(frozen=True)
class SpadEngine(AdgNode):
    """Private scratchpad memory engine.

    Read and write bandwidth are separate ports (Section V-C); capacity is
    in bytes.  ``indirect`` adds indirect-access support.
    """

    capacity_bytes: int = 16384
    read_bandwidth: int = 32
    write_bandwidth: int = 32
    indirect: bool = False

    @property
    def kind(self) -> NodeKind:
        return NodeKind.SPAD


@dataclass(frozen=True)
class GenerateEngine(AdgNode):
    """Generates affine value sequences (loop-variable streams)."""

    bandwidth_bytes: int = 8

    @property
    def kind(self) -> NodeKind:
        return NodeKind.GENERATE


@dataclass(frozen=True)
class RecurrenceEngine(AdgNode):
    """Forwards loop-carried values from output ports back to input ports.

    ``buffer_bytes`` bounds the concurrent recurring working set
    (recurrence depth x element size must fit).
    """

    bandwidth_bytes: int = 32
    buffer_bytes: int = 512

    @property
    def kind(self) -> NodeKind:
        return NodeKind.RECURRENCE


@dataclass(frozen=True)
class RegisterEngine(AdgNode):
    """Collects scalar results from an output port to the control core."""

    bandwidth_bytes: int = 8

    @property
    def kind(self) -> NodeKind:
        return NodeKind.REGISTER


#: Convenience alias used across the scheduler/DSE.
MemoryEngine = (DmaEngine, SpadEngine)
