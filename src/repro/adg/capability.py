"""Functional-unit capabilities of processing elements.

A capability names one operation on one scalar datatype class, e.g.
"64-bit integer multiply" or "double-precision divide".  Table III of the
paper specifies overlays by exactly these counts (``Int +/x/÷``,
``Flt. +/x/÷/sqrt``), so capabilities are the unit of specialization the
DSE adds and prunes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Set, Tuple

from ..ir import (
    DType,
    FLOAT_ONLY_OPS,
    INT_ONLY_OPS,
    Op,
)


@dataclass(frozen=True)
class FuCap:
    """One functional-unit capability: ``op`` on a scalar class.

    Attributes:
        op: the operation.
        is_float: floating-point (True) or integer (False) datapath.
        bits: scalar width in bits (8/16/32/64).
    """

    op: Op
    is_float: bool
    bits: int

    def __post_init__(self) -> None:
        if self.is_float and self.op in INT_ONLY_OPS:
            raise ValueError(f"{self.op} has no floating-point variant")
        if not self.is_float and self.op in FLOAT_ONLY_OPS:
            raise ValueError(f"{self.op} has no integer variant")
        if self.bits not in (8, 16, 32, 64):
            raise ValueError(f"unsupported FU width {self.bits}")

    @property
    def name(self) -> str:
        prefix = "f" if self.is_float else "i"
        return f"{prefix}{self.bits}.{self.op.value}"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


def cap_for(op: Op, dtype: DType) -> FuCap:
    """The capability required to execute ``op`` on one lane of ``dtype``.

    Packed types (``f32x2``) execute on their scalar lane width.
    """
    return FuCap(op, dtype.is_float, dtype.scalar_bits)


def caps_for_dtype(dtype: DType, ops: Iterable[Op]) -> FrozenSet[FuCap]:
    """Capabilities covering ``ops`` at ``dtype``'s scalar width."""
    out: Set[FuCap] = set()
    for op in ops:
        if dtype.is_float and op in INT_ONLY_OPS:
            continue
        if not dtype.is_float and op in FLOAT_ONLY_OPS:
            continue
        out.add(FuCap(op, dtype.is_float, dtype.scalar_bits))
    return frozenset(out)


#: The full general-purpose capability set (the paper's General overlay
#: provisions every integer and floating-point FU at every width).
def universal_caps() -> FrozenSet[FuCap]:
    caps: Set[FuCap] = set()
    for op in Op:
        for bits in (8, 16, 32, 64):
            if op not in FLOAT_ONLY_OPS:
                caps.add(FuCap(op, False, bits))
            if op not in INT_ONLY_OPS and bits in (32, 64):
                caps.add(FuCap(op, True, bits))
    return frozenset(caps)


def summarize_caps(caps: Iterable[FuCap]) -> Tuple[Tuple[str, int], ...]:
    """Histogram of capabilities as (name, count) pairs, sorted."""
    counts = {}
    for cap in caps:
        counts[cap.name] = counts.get(cap.name, 0) + 1
    return tuple(sorted(counts.items()))
