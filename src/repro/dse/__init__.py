"""Unified spatial + system design-space exploration (Section V)."""

from .explorer import (
    AcceptedPoint,
    DseConfig,
    DseResult,
    DseStats,
    Explorer,
    ExplorerState,
    TimeModel,
    explore,
)
from .system import SystemChoice, max_tiles_that_fit, system_dse
from .transforms import (
    RANDOM_TRANSFORMS,
    TransformFailed,
    apply_random_transform,
    collapse_random_switch,
    collapse_switch,
    preserve_edge_delays,
    prune_capabilities,
)

__all__ = [
    "AcceptedPoint",
    "DseConfig",
    "DseResult",
    "DseStats",
    "Explorer",
    "ExplorerState",
    "RANDOM_TRANSFORMS",
    "SystemChoice",
    "TimeModel",
    "TransformFailed",
    "apply_random_transform",
    "collapse_random_switch",
    "collapse_switch",
    "explore",
    "max_tiles_that_fit",
    "preserve_edge_delays",
    "prune_capabilities",
    "system_dse",
]
