"""The unified spatial + system design-space explorer (Section V).

One DSE iteration (Fig. 6):

1. propose ``ADG*`` by cloning the accepted ADG and applying either a
   random transform or a schedule-preserving transform;
2. re-validate/repair every workload's schedule against ``ADG*`` (cheap:
   most hardware is untouched); abandon the candidate if any workload loses
   all schedulable variants;
3. run the nested exhaustive system DSE for ``ADG*``;
4. accept/reject by simulated annealing on the performance objective, with
   resources-per-accelerator as the tie-breaking secondary objective.

Wall-clock accounting: real OverGen DSE runs for hours because scheduling
and compilation dominate; we run the same algorithm in seconds.  To report
Fig. 15/20-style time axes, every operation also charges a *modeled* cost
(seconds a real toolchain would spend), calibrated to the paper's reported
DSE times.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..adg import (
    ADG,
    NodeKind,
    SysADG,
    SystemParams,
    adg_from_dict,
    adg_to_dict,
    seed_for_workloads,
)
from ..compiler import VariantSet, generate_variants
from ..ir import Workload
from ..model.resource import AnalyticEstimator, Resources, usable_budget
from ..profile.memo import ResultMemo, memo_for_config
from ..profile.tracer import add_counter, span
from ..scheduler import (
    Schedule,
    repair_schedule,
    revalidate_schedule,
    schedule_mdfg,
    schedule_workload,
)
from .system import SystemChoice, system_dse
from .transforms import (
    TransformFailed,
    apply_random_transform,
    collapse_random_switch,
    prune_capabilities,
)


@dataclass
class TimeModel:
    """Modeled toolchain costs in seconds (for Fig. 15/20 time axes)."""

    full_compile: float = 420.0      # pre-generating one workload's variants
    full_schedule: float = 75.0      # scheduling one variant from scratch
    repair: float = 6.0              # schedule repair after a breaking mutation
    revalidate: float = 1.2          # re-checking an untouched-valid schedule
    model_eval: float = 0.9          # one system-DSE sweep point
    synthesis_hours: float = 3.4     # final Vivado synthesis + P&R


@dataclass
class DseConfig:
    iterations: int = 150
    seed: int = 0
    initial_temperature: float = 0.12
    final_temperature: float = 0.01
    schedule_preserving: bool = True
    preserving_prob: float = 0.35
    upgrade_every: int = 12          # periodic full variant re-scheduling
    max_tiles: int = 16
    seed_width_bits: int = 512
    #: FPGA budget fraction withheld from the tile-count decision and spent
    #: on generality padding instead (caps, links, spare PEs for future
    #: workloads — the paper's Q4/Q5 behavior).
    generality_reserve: float = 0.10
    time_model: TimeModel = field(default_factory=TimeModel)


@dataclass
class DseStats:
    iterations: int = 0
    accepted: int = 0
    rejected_unschedulable: int = 0
    rejected_annealing: int = 0
    preserved_hits: int = 0          # schedules that survived untouched
    repairs: int = 0
    full_schedules: int = 0
    preserving_transforms: int = 0
    random_transforms: int = 0


#: One accepted DSE point with its full resource vector:
#: ``(iteration, modeled_hours, objective, lut, ff, bram, dsp)``.  The
#: resources are the *system total* of the accepted :class:`SystemChoice`
#: (the "does it fit this FPGA budget" number), recorded for every accept
#: — not just the final best — so the engine metrics stream and the
#: :mod:`repro.search` study importer can reconstruct the whole
#: perf-vs-resources trajectory.
AcceptedPoint = Tuple[int, float, float, float, float, float, float]


@dataclass
class ExplorerState:
    """Complete annealer state at an iteration boundary (checkpointable).

    The accepted ADG is stored as its :mod:`repro.adg.serialize` document
    (plus the id-allocator/edit-stamp counters the document does not carry),
    so a checkpoint written by one process resumes bit-identically in
    another.  Schedules reference hardware by node id and survive the
    round trip because deserialization pins ids.
    """

    iteration: int
    adg_doc: Dict[str, Any]
    adg_next_id: int
    adg_version: int
    schedules: Dict[str, Schedule]
    choice: "SystemChoice"
    rng_state: Any
    stats: DseStats
    history: List[Tuple[int, float, float]]
    modeled_seconds: float
    config_fingerprint: str = ""
    points: List[AcceptedPoint] = field(default_factory=list)


@dataclass
class DseResult:
    """Outcome of one exploration run."""

    sysadg: SysADG
    schedules: Dict[str, Schedule]
    choice: SystemChoice
    history: List[Tuple[int, float, float]]  # (iteration, modeled_h, objective)
    stats: DseStats
    variant_sets: Dict[str, VariantSet]
    modeled_seconds: float
    #: Every accepted point with its full LUT/FF/BRAM/DSP vector (same
    #: iterations as ``history``; resources are the system total).
    points: List[AcceptedPoint] = field(default_factory=list)

    @property
    def modeled_hours(self) -> float:
        return self.modeled_seconds / 3600.0

    def estimate_for(self, workload: str):
        return self.choice.estimates[workload]


class Explorer:
    """Simulated-annealing explorer over (tile ADG x system parameters)."""

    def __init__(
        self,
        workloads: Sequence[Workload],
        config: Optional[DseConfig] = None,
        name: str = "overlay",
    ):
        if not workloads:
            raise ValueError("need at least one workload")
        self.workloads = list(workloads)
        self.config = config or DseConfig()
        self.name = name
        self.rng = random.Random(self.config.seed)
        self.estimator = AnalyticEstimator()
        self.full_budget = usable_budget()
        # The DSE sizes tile counts against a reduced budget; padding then
        # grows the chosen design into the reserve.
        self.budget = self.full_budget * (1.0 - self.config.generality_reserve)
        self.stats = DseStats()
        self.modeled_seconds = 0.0
        self.history: List[Tuple[int, float, float]] = []
        self.points: List[AcceptedPoint] = []
        # Schedule/simulation results memo, shared by every explorer run
        # over this exact config (wall-clock only: modeled seconds and
        # stats still charge as if recomputed, so resume is bit-identical).
        self.memo = self._memo_for_config()

    def _memo_for_config(self) -> ResultMemo:
        from ..engine.hashing import config_fingerprint

        return memo_for_config(config_fingerprint(self.config))

    def _adg_fingerprint(self, adg: ADG) -> str:
        from ..engine.hashing import adg_fingerprint

        return adg_fingerprint(adg)

    # ------------------------------------------------------------------
    def run(
        self,
        *,
        resume: Optional[ExplorerState] = None,
        checkpoint_every: int = 0,
        checkpoint_sink: Optional[Callable[[ExplorerState], None]] = None,
        on_iteration: Optional[Callable[[int, float], None]] = None,
    ) -> DseResult:
        """Run the annealing loop, optionally checkpointing/resuming.

        ``resume`` restores a prior :class:`ExplorerState` (same workloads
        and config) and continues from its iteration; the completed run is
        bit-identical to one that never stopped.  Every ``checkpoint_every``
        iterations the accepted state is passed to ``checkpoint_sink``.
        ``on_iteration(iteration, best_objective)`` streams progress.
        """
        cfg = self.config
        variant_sets = {
            w.name: generate_variants(w) for w in self.workloads
        }
        if resume is not None:
            best = self._restore(resume)
            start = resume.iteration + 1
        else:
            self.modeled_seconds += cfg.time_model.full_compile * len(
                self.workloads
            )
            adg = self._initial_adg()
            schedules = self._schedule_all(variant_sets, adg)
            if schedules is None:
                raise RuntimeError("seed ADG cannot schedule all workloads")
            choice = self._system_dse(adg, schedules)
            if choice is None:
                raise RuntimeError("seed ADG does not fit the FPGA")
            best = (adg, schedules, choice)
            self._record_accept(0, choice)
            start = 1

        for iteration in range(start, cfg.iterations + 1):
            self.stats.iterations = iteration
            add_counter("dse.candidates")
            with span("dse.propose", iteration=iteration):
                candidate = self._propose(best[0], best[1])
            if candidate is None:
                continue
            cand_adg, cand_schedules = candidate
            if iteration % cfg.upgrade_every == 0:
                with span("dse.upgrade", iteration=iteration):
                    cand_schedules = self._upgrade_variants(
                        variant_sets, cand_adg, cand_schedules
                    )
            with span("dse.system", iteration=iteration):
                cand_choice = self._system_dse(cand_adg, cand_schedules)
            if cand_choice is None:
                self.stats.rejected_unschedulable += 1
                add_counter("dse.rejected")
                continue
            if self._accept(cand_choice, best[2], iteration):
                best = (cand_adg, cand_schedules, cand_choice)
                self.stats.accepted += 1
                add_counter("dse.accepted")
                self._record_accept(iteration, cand_choice)
            else:
                self.stats.rejected_annealing += 1
                add_counter("dse.rejected")
            if on_iteration is not None:
                on_iteration(iteration, best[2].objective)
            if (
                checkpoint_every
                and checkpoint_sink is not None
                and iteration % checkpoint_every == 0
            ):
                checkpoint_sink(self.snapshot(iteration, best))

        # Final polish: full variant re-scheduling on the winning ADG.
        adg, schedules, choice = best
        schedules = self._upgrade_variants(variant_sets, adg, schedules)
        choice = self._system_dse(adg, schedules) or choice
        # Generality padding: the DSE "greedily consumes as many resources
        # as possible, even if there is no parallelism" (Q4) so future
        # workloads in the domain have headroom.  Grow capabilities, widths,
        # and capacities as long as the chosen tile count still fits.
        self._pad_for_generality(adg, choice)
        schedules = self._upgrade_variants(variant_sets, adg, schedules)
        choice = self._system_dse(adg, schedules) or choice
        self.modeled_seconds += self.config.time_model.synthesis_hours * 3600.0
        sysadg = SysADG(adg=adg, params=choice.params, name=self.name)
        return DseResult(
            sysadg=sysadg,
            schedules=schedules,
            choice=choice,
            history=self.history,
            stats=self.stats,
            variant_sets=variant_sets,
            modeled_seconds=self.modeled_seconds,
            points=self.points,
        )

    # ------------------------------------------------------------------
    def _record_accept(self, iteration: int, choice: SystemChoice) -> None:
        """Book one accepted point into both trajectory streams."""
        modeled_h = self.modeled_seconds / 3600.0
        self.history.append((iteration, modeled_h, choice.objective))
        total = choice.system_total
        self.points.append(
            (
                iteration,
                modeled_h,
                choice.objective,
                total.lut,
                total.ff,
                total.bram,
                total.dsp,
            )
        )

    # ------------------------------------------------------------------
    def snapshot(
        self,
        iteration: int,
        best: Tuple[ADG, Dict[str, Schedule], SystemChoice],
        config_fingerprint: str = "",
    ) -> ExplorerState:
        """Freeze the accepted state into a self-contained checkpoint."""
        adg, schedules, choice = best
        return ExplorerState(
            iteration=iteration,
            adg_doc=adg_to_dict(adg),
            adg_next_id=adg._next_id,
            adg_version=adg.version,
            schedules={k: s.clone() for k, s in schedules.items()},
            choice=choice,
            rng_state=self.rng.getstate(),
            stats=replace(self.stats),
            history=list(self.history),
            modeled_seconds=self.modeled_seconds,
            config_fingerprint=config_fingerprint,
            points=list(self.points),
        )

    def _restore(
        self, state: ExplorerState
    ) -> Tuple[ADG, Dict[str, Schedule], SystemChoice]:
        """Rebuild the accepted (ADG, schedules, choice) from a checkpoint."""
        adg = adg_from_dict(state.adg_doc)
        adg.restore_counters(state.adg_next_id, state.adg_version)
        self.rng.setstate(state.rng_state)
        self.stats = replace(state.stats)
        self.history = list(state.history)
        # Pre-points checkpoints (schema < 3) restore with an empty list.
        self.points = list(getattr(state, "points", []))
        self.modeled_seconds = state.modeled_seconds
        schedules = {k: s.clone() for k, s in state.schedules.items()}
        return adg, schedules, state.choice

    def _initial_adg(self) -> ADG:
        return seed_for_workloads(
            self.workloads, width_bits=self.config.seed_width_bits
        )

    def _memoized_schedule(
        self,
        adg_fp: str,
        name: str,
        variants: VariantSet,
        adg: ADG,
        params: SystemParams,
    ) -> Optional[Schedule]:
        """``schedule_workload`` behind the config-scoped memo.

        A hit skips the wall-clock work only; the caller still charges the
        modeled toolchain cost and bumps ``full_schedules`` so checkpointed
        runs resume bit-identically regardless of memo warmth.
        """
        hit, schedule = self.memo.lookup_schedule(adg_fp, name)
        if hit:
            add_counter("dse.schedule_memo_hits")
            return schedule
        with span("dse.full_schedule", workload=name):
            schedule = schedule_workload(variants, adg, params)
        self.memo.store_schedule(adg_fp, name, schedule)
        return schedule

    def _schedule_all(
        self, variant_sets: Dict[str, VariantSet], adg: ADG
    ) -> Optional[Dict[str, Schedule]]:
        params = SystemParams()
        adg_fp = self._adg_fingerprint(adg)
        schedules: Dict[str, Schedule] = {}
        for name, variants in variant_sets.items():
            schedule = self._memoized_schedule(
                adg_fp, name, variants, adg, params
            )
            self.stats.full_schedules += len(variants.variants)
            self.modeled_seconds += self.config.time_model.full_schedule * len(
                variants.variants
            )
            if schedule is None:
                return None
            schedules[name] = schedule
        return schedules

    def _propose(
        self, adg: ADG, schedules: Dict[str, Schedule]
    ) -> Optional[Tuple[ADG, Dict[str, Schedule]]]:
        cfg = self.config
        candidate = adg.clone()
        clones = {name: s.clone() for name, s in schedules.items()}
        use_preserving = (
            cfg.schedule_preserving and self.rng.random() < cfg.preserving_prob
        )
        try:
            if use_preserving:
                did = collapse_random_switch(
                    candidate, list(clones.values()), self.rng
                )
                if did is None:
                    prune_capabilities(candidate, list(clones.values()))
                self.stats.preserving_transforms += 1
            else:
                apply_random_transform(candidate, self.rng)
                self.stats.random_transforms += 1
        except TransformFailed:
            return None

        params = SystemParams()
        repaired: Dict[str, Schedule] = {}
        for name, old in clones.items():
            # Fast path (Section V-B): an untouched-valid schedule is
            # re-stamped in place — repair never runs, and the modeled
            # charge is a revalidation, not a fraction of a repair.
            fast = revalidate_schedule(old, candidate, params)
            if fast is not None:
                self.stats.preserved_hits += 1
                self.modeled_seconds += cfg.time_model.revalidate
                repaired[name] = fast
                continue
            new = repair_schedule(old, candidate, params)
            if new is None:
                self.stats.rejected_unschedulable += 1
                return None
            self.stats.repairs += 1
            self.modeled_seconds += cfg.time_model.repair
            repaired[name] = new
        return candidate, repaired

    def _upgrade_variants(
        self,
        variant_sets: Dict[str, VariantSet],
        adg: ADG,
        schedules: Dict[str, Schedule],
    ) -> Dict[str, Schedule]:
        """Periodically retry better variants (they may now fit)."""
        params = SystemParams()
        adg_fp = self._adg_fingerprint(adg)
        out = dict(schedules)
        for name, variants in variant_sets.items():
            best = self._memoized_schedule(adg_fp, name, variants, adg, params)
            self.stats.full_schedules += len(variants.variants)
            self.modeled_seconds += (
                self.config.time_model.full_schedule * len(variants.variants) * 0.4
            )
            if best is None:
                continue
            if best.estimate is None:
                # A variant that schedules but yields no estimate cannot be
                # compared; keep the incumbent instead of crashing mid-anneal.
                if name not in out:
                    out[name] = best
                continue
            current = out.get(name)
            if (
                current is None
                or current.estimate is None
                or best.estimate.ipc > current.estimate.ipc
            ):
                out[name] = best
        return out

    def _pad_for_generality(self, adg: ADG, choice: SystemChoice) -> int:
        """Grow the tile with spare FPGA budget without losing tiles.

        Only monotone *additions* are applied, so every existing schedule
        stays valid.  Repair steps (re-attaching ports, restoring PE fan-in,
        adding missing capabilities) run before pure growth (wider ports,
        bigger scratchpads, extra PEs), so cross-workload flexibility is
        restored before bandwidth is gold-plated.  Returns the step count.
        """
        from .system import max_tiles_that_fit
        from .transforms import PE_WIDTHS, PORT_WIDTHS, SPAD_CAPACITIES

        params = choice.params
        tiles = params.num_tiles

        def still_fits() -> bool:
            tile = self.estimator.tile(adg)
            return (
                max_tiles_that_fit(
                    tile, params, self.full_budget, cap=self.config.max_tiles
                )
                >= tiles
            )

        def attempt(do, undo) -> bool:
            do()
            if still_fits():
                return True
            undo()
            return False

        def step_reattach_ports() -> bool:
            switches = adg.switches
            if not switches:
                return False
            for port in adg.in_ports:
                if not any(
                    adg.node(n).kind is NodeKind.SWITCH
                    for n in adg.successors(port.node_id)
                ):
                    sw = switches[port.node_id % len(switches)].node_id
                    if attempt(
                        lambda: adg.add_link(port.node_id, sw),
                        lambda: adg.remove_link(port.node_id, sw),
                    ):
                        return True
            for port in adg.out_ports:
                feeders = [
                    n
                    for n in adg.predecessors(port.node_id)
                    if adg.node(n).kind is NodeKind.SWITCH
                ]
                if len(feeders) < 2:
                    candidates = [
                        sw for sw in switches if sw.node_id not in feeders
                    ]
                    if candidates:
                        sw = candidates[port.node_id % len(candidates)].node_id
                        if attempt(
                            lambda: adg.add_link(sw, port.node_id),
                            lambda: adg.remove_link(sw, port.node_id),
                        ):
                            return True
            return False

        def step_switch_ring() -> bool:
            ring = sorted(sw.node_id for sw in adg.switches)
            if len(ring) < 2:
                return False
            for a, b in zip(ring, ring[1:] + ring[:1]):
                if not adg.has_link(a, b):
                    if attempt(
                        lambda: adg.add_link(a, b),
                        lambda: adg.remove_link(a, b),
                    ):
                        return True
            return False

        def step_pe_fan() -> bool:
            switches = adg.switches
            if not switches:
                return False
            for pe in adg.pes:
                sw_in = [
                    p
                    for p in adg.predecessors(pe.node_id)
                    if adg.node(p).kind is NodeKind.SWITCH
                ]
                sw_out = [
                    p
                    for p in adg.successors(pe.node_id)
                    if adg.node(p).kind is NodeKind.SWITCH
                ]
                if len(sw_in) < 3:
                    candidates = [
                        sw for sw in switches if sw.node_id not in sw_in
                    ]
                    if candidates:
                        sw = candidates[pe.node_id % len(candidates)].node_id
                        if attempt(
                            lambda: adg.add_link(sw, pe.node_id),
                            lambda: adg.remove_link(sw, pe.node_id),
                        ):
                            return True
                if not sw_out:
                    sw = switches[pe.node_id % len(switches)].node_id
                    if attempt(
                        lambda: adg.add_link(pe.node_id, sw),
                        lambda: adg.remove_link(pe.node_id, sw),
                    ):
                        return True
            return False

        def step_missing_caps() -> bool:
            pool = set()
            for pe in adg.pes:
                pool |= set(pe.caps)
            for pe in sorted(adg.pes, key=lambda p: (len(p.caps), p.node_id)):
                missing = sorted(pool - set(pe.caps), key=lambda c: c.name)
                if missing:
                    old = pe.caps
                    if attempt(
                        lambda: adg.replace_node(
                            pe.node_id, caps=old | {missing[0]}
                        ),
                        lambda: adg.replace_node(pe.node_id, caps=old),
                    ):
                        return True
                    return False
            return False

        def step_memory_links() -> bool:
            for engine in adg.engines:
                for port in adg.in_ports:
                    if not adg.has_link(engine.node_id, port.node_id):
                        if attempt(
                            lambda: adg.add_link(engine.node_id, port.node_id),
                            lambda: adg.remove_link(
                                engine.node_id, port.node_id
                            ),
                        ):
                            return True
                        return False
                for port in adg.out_ports:
                    if not adg.has_link(port.node_id, engine.node_id):
                        if attempt(
                            lambda: adg.add_link(port.node_id, engine.node_id),
                            lambda: adg.remove_link(
                                port.node_id, engine.node_id
                            ),
                        ):
                            return True
                        return False
            return False

        def step_add_ports() -> bool:
            switches = adg.switches
            if not switches:
                return False
            if len(adg.in_ports) < 12:
                port = adg.add_in_port(
                    width_bytes=8, supports_padding=True, supports_meta=True
                )
                adg.add_link(port, switches[0].node_id)
                for engine in adg.engines:
                    adg.add_link(engine.node_id, port)
                if still_fits():
                    return True
                adg.remove_node(port)
            if len(adg.out_ports) < 6:
                port = adg.add_out_port(width_bytes=8)
                adg.add_link(switches[-1].node_id, port)
                for engine in adg.engines:
                    adg.add_link(port, engine.node_id)
                if still_fits():
                    return True
                adg.remove_node(port)
            return False

        def step_widen_ports() -> bool:
            for port in sorted(
                adg.in_ports + adg.out_ports,
                key=lambda p: (p.width_bytes, p.node_id),
            ):
                wider = [w for w in PORT_WIDTHS if w > port.width_bytes]
                if not wider:
                    continue
                old = port.width_bytes
                if attempt(
                    lambda: adg.replace_node(port.node_id, width_bytes=wider[0]),
                    lambda: adg.replace_node(port.node_id, width_bytes=old),
                ):
                    return True
                return False
            return False

        def step_widen_pes() -> bool:
            for pe in sorted(adg.pes, key=lambda p: (p.width_bits, p.node_id)):
                wider = [w for w in PE_WIDTHS if w > pe.width_bits]
                if not wider:
                    continue
                old = pe.width_bits
                if attempt(
                    lambda: adg.replace_node(pe.node_id, width_bits=wider[0]),
                    lambda: adg.replace_node(pe.node_id, width_bits=old),
                ):
                    return True
                return False
            return False

        def step_grow_spad() -> bool:
            for spad in sorted(
                adg.spads, key=lambda sp: (sp.capacity_bytes, sp.node_id)
            ):
                bigger = [c for c in SPAD_CAPACITIES if c > spad.capacity_bytes]
                if not bigger:
                    continue
                old = spad.capacity_bytes
                if attempt(
                    lambda: adg.replace_node(
                        spad.node_id, capacity_bytes=bigger[0]
                    ),
                    lambda: adg.replace_node(spad.node_id, capacity_bytes=old),
                ):
                    return True
                return False
            return False

        def step_add_pe() -> bool:
            switches = adg.switches
            if not switches or not adg.pes:
                return False
            donor = max(adg.pes, key=lambda p: (len(p.caps), p.node_id))
            pe_id = adg.add_pe(caps=donor.caps, width_bits=donor.width_bits)
            sw = switches[pe_id % len(switches)]
            adg.add_link(sw.node_id, pe_id)
            adg.add_link(pe_id, sw.node_id)
            if still_fits():
                return True
            adg.remove_node(pe_id)
            return False

        ordered_steps = (
            step_reattach_ports,
            step_switch_ring,
            step_pe_fan,
            step_missing_caps,
            step_memory_links,
            step_add_ports,
            step_add_pe,
            step_widen_ports,
            step_widen_pes,
            step_grow_spad,
        )
        steps = 0
        progress = True
        while progress and steps < 1000:
            progress = False
            for step in ordered_steps:
                if step():
                    steps += 1
                    progress = True
                    break
        return steps

    def _system_dse(
        self, adg: ADG, schedules: Dict[str, Schedule]
    ) -> Optional[SystemChoice]:
        self.modeled_seconds += self.config.time_model.model_eval * 60
        return system_dse(
            adg,
            list(schedules.values()),
            estimator=self.estimator,
            budget=self.budget,
            max_tiles=self.config.max_tiles,
        )

    def _accept(
        self, candidate: SystemChoice, incumbent: SystemChoice, iteration: int
    ) -> bool:
        if candidate.objective > incumbent.objective:
            return True
        if candidate.objective == incumbent.objective:
            return candidate.tile_resources.lut < incumbent.tile_resources.lut
        cfg = self.config
        progress = iteration / max(1, cfg.iterations)
        temperature = cfg.initial_temperature * (
            (cfg.final_temperature / cfg.initial_temperature) ** progress
        )
        if incumbent.objective <= 0:
            return True
        rel_drop = (incumbent.objective - candidate.objective) / incumbent.objective
        return self.rng.random() < math.exp(-rel_drop / temperature)


def explore(
    workloads: Sequence[Workload],
    config: Optional[DseConfig] = None,
    name: str = "overlay",
) -> DseResult:
    """Run the full OverGen DSE for a workload set."""
    return Explorer(workloads, config, name).run()
