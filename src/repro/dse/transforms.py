"""ADG mutation operators for the spatial DSE.

Two families:

* **Random transforms** — the graph-based simulated-annealing moves
  inherited from DSAGEN: add/remove PEs, switches, links, ports, FU
  capabilities, scratchpads; resize widths, capacities and bandwidths.
  The memory-side link toggles are OverGen's spatial-memory extension
  (which engine reaches which port is part of the explored space).

* **Schedule-preserving transforms** (Section V-B) — hardware *removals*
  guided by existing schedules that add back the minimum capability needed
  to keep those schedules valid: node collapsing (delete a routing switch,
  bridge its through-routes with direct links), edge-delay preservation
  (grow delay FIFOs to cover new skew), and module-capability pruning
  (drop FU caps / ports / engines no schedule uses).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..adg import (
    ADG,
    AdgError,
    FuCap,
    NodeKind,
    ProcessingElement,
    SpadEngine,
    Switch,
)
from ..scheduler import Schedule

PORT_WIDTHS = (4, 8, 16, 32, 64)
SPAD_CAPACITIES = (4096, 8192, 16384, 32768, 65536)
BANDWIDTHS = (8, 16, 32, 64)
PE_WIDTHS = (64, 128, 256, 512)


class TransformFailed(Exception):
    """The chosen mutation is inapplicable to this ADG; pick another."""


# ----------------------------------------------------------------------
# Random transforms
# ----------------------------------------------------------------------
def _random_cap_pool(adg: ADG) -> List[FuCap]:
    pool: Set[FuCap] = set()
    for pe in adg.pes:
        pool |= set(pe.caps)
    if not pool:
        raise TransformFailed("no capability pool")
    return sorted(pool, key=lambda c: c.name)


def add_pe(adg: ADG, rng: random.Random) -> str:
    switches = adg.switches
    if len(switches) < 2:
        raise TransformFailed("not enough switches")
    pool = _random_cap_pool(adg)
    caps = frozenset(rng.sample(pool, k=min(len(pool), rng.randint(1, 3))))
    width = rng.choice(PE_WIDTHS)
    pe = adg.add_pe(caps=caps, width_bits=width)
    for src in rng.sample(switches, k=min(2, len(switches))):
        adg.add_link(src.node_id, pe)
    dst = rng.choice(switches)
    adg.add_link(pe, dst.node_id)
    return f"add_pe({width}b)"


def remove_pe(adg: ADG, rng: random.Random) -> str:
    pes = adg.pes
    if len(pes) <= 1:
        raise TransformFailed("cannot remove the last PE")
    victim = rng.choice(pes)
    adg.remove_node(victim.node_id)
    return f"remove_pe({victim.node_id})"


def add_switch(adg: ADG, rng: random.Random) -> str:
    switches = adg.switches
    if len(switches) < 2:
        raise TransformFailed("not enough switches")
    width = max(s.width_bits for s in switches)
    new = adg.add_switch(width_bits=width)
    others = rng.sample(switches, k=min(3, len(switches)))
    adg.add_link(others[0].node_id, new)
    for other in others[1:]:
        adg.add_link(new, other.node_id)
    return "add_switch"


def remove_switch(adg: ADG, rng: random.Random) -> str:
    switches = adg.switches
    # Keep a routing fabric: real overlays retain roughly one switch per
    # PE (Table III); total collapse destroys cross-workload flexibility.
    if len(switches) <= max(2, int(0.8 * len(adg.pes))):
        raise TransformFailed("too few switches")
    victim = rng.choice(switches)
    adg.remove_node(victim.node_id)
    return f"remove_switch({victim.node_id})"


def add_fabric_link(adg: ADG, rng: random.Random) -> str:
    switches = adg.switches
    if len(switches) < 2:
        raise TransformFailed("not enough switches")
    a, b = rng.sample(switches, k=2)
    if adg.has_link(a.node_id, b.node_id):
        raise TransformFailed("link exists")
    adg.add_link(a.node_id, b.node_id)
    return "add_link"


def remove_fabric_link(adg: ADG, rng: random.Random) -> str:
    fabric_kinds = {NodeKind.SWITCH, NodeKind.PE}
    links = [
        (s, d)
        for s, d in adg.links()
        if adg.node(s).kind in fabric_kinds and adg.node(d).kind in fabric_kinds
    ]
    if not links:
        raise TransformFailed("no fabric links")
    s, d = rng.choice(links)
    adg.remove_link(s, d)
    return "remove_link"


def toggle_memory_link(adg: ADG, rng: random.Random) -> str:
    """Add or remove one engine<->port link (spatial-memory exploration)."""
    engines = adg.engines
    if not engines:
        raise TransformFailed("no engines")
    engine = rng.choice(engines)
    if rng.random() < 0.5 and adg.in_ports:
        port = rng.choice(adg.in_ports)
        if adg.has_link(engine.node_id, port.node_id):
            adg.remove_link(engine.node_id, port.node_id)
            return "unlink_engine_port"
        adg.add_link(engine.node_id, port.node_id)
        return "link_engine_port"
    if not adg.out_ports:
        raise TransformFailed("no out ports")
    port = rng.choice(adg.out_ports)
    if adg.has_link(port.node_id, engine.node_id):
        adg.remove_link(port.node_id, engine.node_id)
        return "unlink_port_engine"
    adg.add_link(port.node_id, engine.node_id)
    return "link_port_engine"


def add_cap(adg: ADG, rng: random.Random) -> str:
    pes = adg.pes
    if not pes:
        raise TransformFailed("no PEs")
    pool = _random_cap_pool(adg)
    pe = rng.choice(pes)
    cap = rng.choice(pool)
    if cap in pe.caps:
        raise TransformFailed("cap already present")
    adg.replace_node(pe.node_id, caps=pe.caps | {cap})
    return f"add_cap({cap.name})"


def remove_cap(adg: ADG, rng: random.Random) -> str:
    pes = [p for p in adg.pes if len(p.caps) > 1]
    if not pes:
        raise TransformFailed("no prunable PEs")
    pe = rng.choice(pes)
    cap = rng.choice(sorted(pe.caps, key=lambda c: c.name))
    adg.replace_node(pe.node_id, caps=pe.caps - {cap})
    return f"remove_cap({cap.name})"


def resize_pe_width(adg: ADG, rng: random.Random) -> str:
    pes = adg.pes
    if not pes:
        raise TransformFailed("no PEs")
    pe = rng.choice(pes)
    width = rng.choice([w for w in PE_WIDTHS if w != pe.width_bits])
    adg.replace_node(pe.node_id, width_bits=width)
    return f"pe_width({width})"


def resize_port(adg: ADG, rng: random.Random) -> str:
    ports = adg.in_ports + adg.out_ports
    if not ports:
        raise TransformFailed("no ports")
    port = rng.choice(ports)
    width = rng.choice([w for w in PORT_WIDTHS if w != port.width_bytes])
    adg.replace_node(port.node_id, width_bytes=width)
    return f"port_width({width})"


def add_port(adg: ADG, rng: random.Random) -> str:
    switches = adg.switches
    engines = adg.engines
    if not switches or not engines:
        raise TransformFailed("no fabric/engines")
    width = rng.choice(PORT_WIDTHS)
    if rng.random() < 0.6:
        port = adg.add_in_port(
            width_bytes=width, supports_padding=True, supports_meta=True
        )
        adg.add_link(port, rng.choice(switches).node_id)
        for engine in engines:
            adg.add_link(engine.node_id, port)
        return f"add_in_port({width})"
    port = adg.add_out_port(width_bytes=width)
    adg.add_link(rng.choice(switches).node_id, port)
    for engine in engines:
        adg.add_link(port, engine.node_id)
    return f"add_out_port({width})"


def remove_port(adg: ADG, rng: random.Random) -> str:
    ports = adg.in_ports + adg.out_ports
    if len(adg.in_ports) <= 1 or len(adg.out_ports) <= 1:
        raise TransformFailed("too few ports")
    port = rng.choice(ports)
    adg.remove_node(port.node_id)
    return "remove_port"


def mutate_spad(adg: ADG, rng: random.Random) -> str:
    """Add, remove, or resize a scratchpad (capacity/bandwidth/indirect)."""
    spads = adg.spads
    roll = rng.random()
    if roll < 0.25 or not spads:
        capacity = rng.choice(SPAD_CAPACITIES)
        bw = rng.choice(BANDWIDTHS)
        spad = adg.add_spad(
            capacity_bytes=capacity,
            read_bandwidth=bw,
            write_bandwidth=bw,
            indirect=rng.random() < 0.3,
        )
        for port in adg.in_ports:
            adg.add_link(spad, port.node_id)
        for port in adg.out_ports:
            adg.add_link(port.node_id, spad)
        return f"add_spad({capacity})"
    spad = rng.choice(spads)
    if roll < 0.4:
        adg.remove_node(spad.node_id)
        return "remove_spad"
    if roll < 0.6:
        capacity = rng.choice(SPAD_CAPACITIES)
        adg.replace_node(spad.node_id, capacity_bytes=capacity)
        return f"spad_capacity({capacity})"
    if roll < 0.8:
        bw = rng.choice(BANDWIDTHS)
        adg.replace_node(
            spad.node_id, read_bandwidth=bw, write_bandwidth=bw
        )
        return f"spad_bw({bw})"
    adg.replace_node(spad.node_id, indirect=not spad.indirect)
    return "spad_indirect_toggle"


def mutate_engine_bandwidth(adg: ADG, rng: random.Random) -> str:
    dmas = adg.dmas
    recs = adg.of_kind(NodeKind.RECURRENCE)
    choices = []
    if dmas:
        choices.append("dma")
    if recs:
        choices.append("rec")
    if not choices:
        raise TransformFailed("no engines")
    which = rng.choice(choices)
    if which == "dma":
        dma = rng.choice(dmas)
        bw = rng.choice([b for b in BANDWIDTHS if b != dma.bandwidth_bytes])
        adg.replace_node(dma.node_id, bandwidth_bytes=bw)
        return f"dma_bw({bw})"
    rec = rng.choice(recs)
    if rng.random() < 0.5:
        bw = rng.choice([b for b in BANDWIDTHS if b != rec.bandwidth_bytes])
        adg.replace_node(rec.node_id, bandwidth_bytes=bw)
        return f"rec_bw({bw})"
    buf = rng.choice((256, 512, 1024, 2048, 4096, 8192))
    adg.replace_node(rec.node_id, buffer_bytes=buf)
    return f"rec_buffer({buf})"


RANDOM_TRANSFORMS = (
    add_pe,
    remove_pe,
    add_switch,
    remove_switch,
    add_fabric_link,
    remove_fabric_link,
    toggle_memory_link,
    add_cap,
    remove_cap,
    resize_pe_width,
    resize_port,
    add_port,
    remove_port,
    mutate_spad,
    mutate_engine_bandwidth,
)


def apply_random_transform(adg: ADG, rng: random.Random, tries: int = 8) -> str:
    """Apply one applicable random transform; raises after ``tries`` misses."""
    for _ in range(tries):
        op = rng.choice(RANDOM_TRANSFORMS)
        try:
            return op(adg, rng)
        except (TransformFailed, AdgError):
            continue
    raise TransformFailed("no applicable transform found")


# ----------------------------------------------------------------------
# Schedule-preserving transforms (Section V-B)
# ----------------------------------------------------------------------
def collapse_switch(
    adg: ADG,
    switch_id: int,
    schedules: Sequence[Schedule],
) -> bool:
    """Node collapsing: delete a switch, bridging routes that pass through.

    For every scheduled route traversing the switch, a direct link from the
    preceding hop to the following hop is added before deletion, so the
    route remains realizable (Fig. 7a).  Returns False when the switch is a
    route *endpoint* somewhere (cannot collapse) or not a switch.
    """
    node = adg.node(switch_id) if adg.has_node(switch_id) else None
    if node is None or node.kind is not NodeKind.SWITCH:
        return False
    bridges: Set[Tuple[int, int]] = set()
    for schedule in schedules:
        for key in schedule.routes_through(switch_id):
            path = schedule.routes[key]
            if path[0] == switch_id or path[-1] == switch_id:
                return False
            idx = path.index(switch_id)
            bridges.add((path[idx - 1], path[idx + 1]))
    for src, dst in bridges:
        if src == dst:
            continue
        try:
            if not adg.has_link(src, dst):
                adg.add_link(src, dst)
        except AdgError:
            return False
    adg.remove_node(switch_id)
    # Patch the stored routes so they stay valid without rescheduling.
    for schedule in schedules:
        for key in schedule.routes_through(switch_id):
            path = schedule.routes[key]
            schedule.routes[key] = tuple(n for n in path if n != switch_id)
    return True


def preserve_edge_delays(
    adg: ADG,
    schedules: Sequence[Schedule],
) -> int:
    """Edge-delay preservation: deepen PE delay FIFOs to cover skew.

    After collapses shorten some operand paths, the per-PE operand skew can
    exceed the configured FIFO depth; this grows ``max_delay_fifo`` to the
    observed requirement (Fig. 7b).  Returns the number of PEs adjusted.
    """
    adjusted = 0
    needed: Dict[int, int] = {}
    for schedule in schedules:
        per_pe: Dict[int, List[int]] = {}
        for (src, dst, _slot), path in schedule.routes.items():
            node = schedule.mdfg.node(dst)
            from ..dfg import ComputeNode

            if isinstance(node, ComputeNode):
                pe = schedule.placement.get(dst)
                if pe is not None:
                    per_pe.setdefault(pe, []).append(len(path) - 1)
        for pe, lengths in per_pe.items():
            if len(lengths) >= 2:
                skew = max(lengths) - min(lengths)
                needed[pe] = max(needed.get(pe, 0), skew)
    for pe_id, depth in needed.items():
        if not adg.has_node(pe_id):
            continue
        pe = adg.node(pe_id)
        if isinstance(pe, ProcessingElement) and pe.max_delay_fifo < depth:
            adg.replace_node(pe_id, max_delay_fifo=depth)
            adjusted += 1
    return adjusted


def prune_capabilities(
    adg: ADG,
    schedules: Sequence[Schedule],
) -> int:
    """Module-capability pruning: drop hardware no schedule uses.

    Removes unused FU capabilities from PEs, narrows over-wide ports to the
    widest scheduled use, and deletes engines that no stream binds to.
    Returns the number of modifications made.
    """
    from ..adg import cap_for
    from ..dfg import ComputeNode, InputPortNode, OutputPortNode, StreamNode

    changes = 0
    used_caps: Dict[int, Set[FuCap]] = {}
    used_width: Dict[int, int] = {}
    used_engines: Set[int] = set()
    pes_in_use: Set[int] = set()
    ports_in_use: Set[int] = set()
    for schedule in schedules:
        for dfg_id, hw_id in schedule.placement.items():
            node = schedule.mdfg.node(dfg_id)
            if isinstance(node, ComputeNode):
                used_caps.setdefault(hw_id, set()).add(
                    cap_for(node.op, node.dtype)
                )
                pes_in_use.add(hw_id)
            elif isinstance(node, (InputPortNode, OutputPortNode)):
                used_width[hw_id] = max(
                    used_width.get(hw_id, 0), node.width_bytes
                )
                ports_in_use.add(hw_id)
            elif isinstance(node, StreamNode):
                used_engines.add(hw_id)
    for pe in adg.pes:
        needed = used_caps.get(pe.node_id)
        if needed is None:
            continue  # unused PE: removal is the random DSE's call
        if pe.caps - needed:
            adg.replace_node(pe.node_id, caps=frozenset(needed))
            changes += 1
    for port in adg.in_ports + adg.out_ports:
        width = used_width.get(port.node_id)
        if width is not None and port.width_bytes > width:
            snapped = min(w for w in PORT_WIDTHS if w >= width)
            if snapped < port.width_bytes:
                adg.replace_node(port.node_id, width_bytes=snapped)
                changes += 1
    for engine in adg.engines:
        if engine.kind is NodeKind.DMA:
            continue  # always keep a DMA: fallback path for everything
        if engine.node_id not in used_engines:
            adg.remove_node(engine.node_id)
            changes += 1
    return changes


def collapse_random_switch(
    adg: ADG,
    schedules: Sequence[Schedule],
    rng: random.Random,
) -> Optional[str]:
    """Try collapsing one randomly chosen switch; None if nothing worked."""
    switches = adg.switches
    if len(switches) <= max(2, int(0.8 * len(adg.pes))):
        return None
    rng.shuffle(switches)
    for sw in switches[: min(6, len(switches))]:
        if collapse_switch(adg, sw.node_id, schedules):
            preserve_edge_delays(adg, schedules)
            return f"collapse_switch({sw.node_id})"
    return None
