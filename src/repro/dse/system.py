"""Nested system-level DSE (Section V-A).

For a fixed tile ADG (with workloads already scheduled), exhaustively sweep
the system grid — L2 banks, L2 capacity, NoC bandwidth — and for each point
derive the largest tile count that fits the FPGA budget.  The objective
favors estimated performance first, then fewer resources per accelerator
(the secondary objective that gives the spatial DSE an incentive to prune).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..adg import ADG, SysADG, SystemParams, system_param_space
from ..model.perf import PerfEstimate, estimate_ipc, geomean_ipc
from ..model.resource import (
    AnalyticEstimator,
    Resources,
    control_core_resources,
    l2_resources,
    noc_resources,
    usable_budget,
)
from ..scheduler import Schedule


@dataclass
class SystemChoice:
    """The best system configuration found for one candidate ADG."""

    params: SystemParams
    objective: float            # weighted geomean estimated IPC
    tile_resources: Resources   # one accelerator tile (secondary objective)
    system_total: Resources
    estimates: Dict[str, PerfEstimate]


def max_tiles_that_fit(
    tile: Resources,
    params: SystemParams,
    budget: Resources,
    cap: int = 16,
) -> int:
    """Largest tile count whose full system fits ``budget`` (0 if none)."""
    core = control_core_resources()
    l2 = l2_resources(params.l2_kib, params.l2_banks)
    for tiles in range(cap, 0, -1):
        total = (
            (tile + core) * tiles
            + l2
            + noc_resources(tiles, params.noc_bytes_per_cycle)
        )
        if total.fits_in(budget):
            return tiles
    return 0


def system_dse(
    adg: ADG,
    schedules: Sequence[Schedule],
    estimator: Optional[AnalyticEstimator] = None,
    budget: Optional[Resources] = None,
    max_tiles: int = 16,
    weights: Optional[Sequence[float]] = None,
) -> Optional[SystemChoice]:
    """Exhaustive sweep of the system grid for one candidate ADG.

    Returns None when no grid point fits even one tile.
    """
    estimator = estimator or AnalyticEstimator()
    budget = budget or usable_budget()
    tile = estimator.tile(adg)
    best: Optional[SystemChoice] = None
    for l2_banks, l2_kib, noc_bytes in system_param_space():
        params = SystemParams(
            num_tiles=1,
            l2_banks=l2_banks,
            l2_kib=l2_kib,
            noc_bytes_per_cycle=noc_bytes,
        )
        tiles = max_tiles_that_fit(tile, params, budget, cap=max_tiles)
        if tiles == 0:
            continue
        params = replace(params, num_tiles=tiles)
        estimates = {}
        for schedule in schedules:
            est = estimate_ipc(
                schedule.mdfg, schedule.binding(), adg, params
            )
            estimates[schedule.mdfg.workload] = est
        objective = geomean_ipc(list(estimates.values()), weights)
        core = control_core_resources()
        total = (
            (tile + core) * tiles
            + l2_resources(l2_kib, l2_banks)
            + noc_resources(tiles, noc_bytes)
        )
        candidate = SystemChoice(
            params=params,
            objective=objective,
            tile_resources=tile,
            system_total=total,
            estimates=estimates,
        )
        if best is None or _better(candidate, best):
            best = candidate
    return best


def _better(a: SystemChoice, b: SystemChoice) -> bool:
    """Objective order: performance first, then resources-per-accelerator."""
    if a.objective != b.objective:
        return a.objective > b.objective
    return a.tile_resources.lut < b.tile_resources.lut
