"""Config-scoped memoization of schedule and simulation results.

The DSE inner loop recomputes two expensive, *deterministic* functions:

* full variant scheduling (``schedule_workload``) — re-run by the
  explorer's periodic variant upgrade and final polish, frequently
  against an ADG fingerprint it has already scheduled;
* cycle-level simulation (``simulate_schedule``) — re-run by benchmarks
  and validation over identical (design, workload, variant) triples.

:class:`ResultMemo` caches both, keyed by the content fingerprint of the
ADG (via :mod:`repro.engine.hashing`) plus the workload/variant identity,
so a hit is guaranteed to be byte-equivalent to recomputing.  Memos are
scoped per :class:`~repro.dse.DseConfig` fingerprint through
:func:`memo_for_config`, so two explorer runs over the same config share
results while different configs can never alias.

Memoization is a **wall-clock optimization only**: the explorer still
charges the full *modeled* toolchain cost and bumps the same
:class:`~repro.dse.DseStats` counters on a hit, so checkpoint/resume
stays bit-identical (a resumed run has a cold memo) and the Fig. 15/20
modeled DSE-hours remain comparable across cache states.  Hit/miss
accounting lives here, in :class:`MemoStats`, and is reported by
``repro bench`` and the tracer counters instead.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Any, Dict, Optional, Tuple


@dataclass
class MemoStats:
    """Hit/miss counters for one memo scope (not checkpointed)."""

    schedule_hits: int = 0
    schedule_misses: int = 0
    sim_hits: int = 0
    sim_misses: int = 0

    @property
    def schedule_hit_rate(self) -> float:
        total = self.schedule_hits + self.schedule_misses
        return self.schedule_hits / total if total else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schedule_hits": self.schedule_hits,
            "schedule_misses": self.schedule_misses,
            "schedule_hit_rate": self.schedule_hit_rate,
            "sim_hits": self.sim_hits,
            "sim_misses": self.sim_misses,
        }


class ResultMemo:
    """Thread-safe schedule/simulation result cache for one scope."""

    def __init__(self, scope: str = "") -> None:
        self.scope = scope
        self.stats = MemoStats()
        self._schedules: Dict[Tuple[str, str], Any] = {}
        self._sims: Dict[str, Any] = {}
        self._lock = threading.Lock()

    # -- schedules -----------------------------------------------------
    def lookup_schedule(self, adg_fp: str, workload: str) -> Tuple[bool, Any]:
        """``(hit, schedule-or-None)``; unschedulable results memoize too.

        Hits return a clone, so callers may mutate freely.
        """
        key = (adg_fp, workload)
        with self._lock:
            if key in self._schedules:
                self.stats.schedule_hits += 1
                stored = self._schedules[key]
                return True, (stored.clone() if stored is not None else None)
            self.stats.schedule_misses += 1
            return False, None

    def store_schedule(self, adg_fp: str, workload: str, schedule: Any) -> None:
        with self._lock:
            self._schedules[(adg_fp, workload)] = (
                schedule.clone() if schedule is not None else None
            )

    # -- simulations ---------------------------------------------------
    def lookup_sim(self, key: str) -> Tuple[bool, Any]:
        with self._lock:
            if key in self._sims:
                self.stats.sim_hits += 1
                return True, self._sims[key]
            self.stats.sim_misses += 1
            return False, None

    def store_sim(self, key: str, result: Any) -> None:
        with self._lock:
            self._sims[key] = result

    def __len__(self) -> int:
        with self._lock:
            return len(self._schedules) + len(self._sims)


def sim_key(schedule: Any, sysadg: Any, **sim_kwargs: Any) -> str:
    """Content key of one simulation call: design + variant + options."""
    from ..engine.hashing import adg_fingerprint, fingerprint

    return fingerprint(
        {
            "adg": adg_fingerprint(sysadg.adg),
            "params": fingerprint(sysadg.params),
            "workload": schedule.mdfg.workload,
            "variant": schedule.mdfg.variant,
            "options": sorted(sim_kwargs.items()),
        }
    )


def simulate_memoized(schedule: Any, sysadg: Any, memo: ResultMemo, **kwargs: Any):
    """``simulate_schedule`` behind ``memo``; hits skip the cycle loop.

    Returns a shallow copy on a hit so callers cannot corrupt the cache
    through the result's dict fields.
    """
    from ..sim import simulate_schedule

    key = sim_key(schedule, sysadg, **kwargs)
    hit, result = memo.lookup_sim(key)
    if hit:
        return replace(
            result,
            engine_busy=dict(result.engine_busy),
            pool_bytes=dict(result.pool_bytes),
        )
    result = simulate_schedule(schedule, sysadg, **kwargs)
    memo.store_sim(key, result)
    return result


# ----------------------------------------------------------------------
# Per-config registry: explorer runs sharing a DseConfig fingerprint
# share one memo (within this process); workers get their own.
# ----------------------------------------------------------------------
_registry: Dict[str, ResultMemo] = {}
_registry_lock = threading.Lock()


def memo_for_config(config_key: str) -> ResultMemo:
    """The process-wide :class:`ResultMemo` for one DseConfig fingerprint."""
    with _registry_lock:
        memo = _registry.get(config_key)
        if memo is None:
            memo = _registry[config_key] = ResultMemo(scope=config_key)
        return memo


def drop_memo(config_key: str) -> None:
    """Forget one config's memo (benchmarks use this for cold runs)."""
    with _registry_lock:
        _registry.pop(config_key, None)


def clear_memos() -> None:
    with _registry_lock:
        _registry.clear()
