"""Fixed-seed DSE + simulation benchmarks: the ``repro bench`` command.

Two benchmark workloads run under one :class:`~repro.profile.Tracer`:

* **DSE** — a fixed-seed annealing run (cold memo), then the identical
  run again (warm memo).  Reports wall seconds, candidates/sec, the
  preserved-hit rate, the measured mean wall time of the
  schedule-preserving fast path (``scheduler.revalidate``) versus the
  repair path (``scheduler.repair``), and the warm-memo speedup.
* **Simulation** — cycle-level simulation of a workload set on the
  deterministic general overlay.  Reports cycles stepped per wall
  second and the memoized-rerun speedup.

Results are written as ``BENCH_dse.json`` / ``BENCH_sim.json``
(schema documented in README).  ``compare_reports`` implements the
``--compare BASELINE.json`` regression mode, and ``measure_overhead``
times the disabled-tracer ``span()`` fast path against a no-tracer run
(the CI gate asserts the ratio stays near 1.0).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Dict, Optional, Tuple

from .memo import ResultMemo, drop_memo, simulate_memoized
from .tracer import Tracer, current, install, span, tracing, uninstall

#: Version of the BENCH_*.json document layout.
BENCH_SCHEMA = 1

#: Metrics compared by ``--compare`` (all higher-is-better rates/ratios;
#: raw wall seconds are machine-dependent and deliberately excluded).
COMPARED_METRICS: Dict[str, Tuple[str, ...]] = {
    "dse": ("candidates_per_second", "fast_path_speedup", "memo_speedup"),
    # sim memo_speedup (miss/hit wall ratio) is still *emitted* but no
    # longer compared: the vectorized core shrank the miss wall (its
    # denominator driver) ~100x, so the ratio collapses toward 1 without
    # any memo regression — it measures the sim, not the memo.
    "sim": ("cycles_per_second", "batch_cycles_per_second"),
    # The strategy shootout compares solution quality, which is
    # deterministic per (budget, seed) — regressions here mean a search
    # code change, not machine noise.
    "search": (
        "anneal_best_objective",
        "bottleneck_best_objective",
        "evolutionary_best_objective",
        "tpe_best_objective",
    ),
}

#: Strategies the ``bench search`` shootout runs, in report order.
SEARCH_STRATEGIES: Tuple[str, ...] = (
    "anneal",
    "bottleneck",
    "evolutionary",
    "tpe",
)


@dataclass(frozen=True)
class BenchBudget:
    """One named benchmark size (what CI calls ``--budget``)."""

    name: str
    dse_workloads: Tuple[str, ...]
    dse_iterations: int
    sim_workloads: Tuple[str, ...]
    overhead_calls: int
    #: Per-strategy trial budget of the ``bench search`` shootout.
    search_trials: int = 8


BUDGETS: Dict[str, BenchBudget] = {
    "smoke": BenchBudget(
        name="smoke",
        dse_workloads=("fir",),
        dse_iterations=8,
        sim_workloads=("fir", "vecmax"),
        overhead_calls=20_000,
        search_trials=6,
    ),
    "small": BenchBudget(
        name="small",
        dse_workloads=("fir", "mm"),
        dse_iterations=40,
        sim_workloads=("fir", "mm", "bgr2grey", "vecmax"),
        overhead_calls=50_000,
        search_trials=12,
    ),
    "full": BenchBudget(
        name="full",
        dse_workloads=("cholesky", "fft", "fir", "solver", "mm"),
        dse_iterations=150,
        sim_workloads=(
            "fir", "mm", "fft", "gemm", "stencil-2d", "bgr2grey", "blur",
            "vecmax",
        ),
        overhead_calls=200_000,
        search_trials=32,
    ),
}


@dataclass
class BenchReport:
    """Everything one ``repro bench`` invocation produced."""

    dse: Dict[str, Any]
    sim: Dict[str, Any]
    overhead: Dict[str, Any]
    dse_path: str
    sim_path: str
    tracer: Tracer


def measure_overhead(calls: int, repeats: int = 5) -> Dict[str, Any]:
    """Time the ``span()`` no-op path with no tracer vs a disabled tracer.

    Both paths must resolve to the same single-global-load check; the CI
    gate (``--max-overhead``) fails when the disabled-tracer loop is
    measurably slower than the no-tracer loop.  Takes the min over
    ``repeats`` to suppress scheduler noise.
    """

    def loop() -> float:
        t0 = perf_counter()
        for _ in range(calls):
            with span("bench.overhead"):
                pass
        return perf_counter() - t0

    previous = current()
    disabled_tracer = Tracer(enabled=False)
    no_tracer = disabled = float("inf")
    try:
        # Interleave the two configurations so slow clock/thermal drift
        # hits both equally instead of biasing whichever ran second.
        for _ in range(repeats):
            uninstall()
            loop()  # warm-up
            no_tracer = min(no_tracer, loop())
            install(disabled_tracer)
            loop()  # warm-up
            disabled = min(disabled, loop())
    finally:
        if previous is not None:
            install(previous)
        else:
            uninstall()
    return {
        "calls": calls,
        "repeats": repeats,
        "no_tracer_s": no_tracer,
        "disabled_tracer_s": disabled,
        "ratio": disabled / no_tracer if no_tracer > 0 else 1.0,
    }


def bench_dse(budget: BenchBudget, seed: int, tracer: Tracer) -> Dict[str, Any]:
    """Fixed-seed DSE benchmark: cold run, then warm (memoized) rerun."""
    from ..dse import DseConfig, Explorer
    from ..engine.hashing import config_fingerprint
    from ..workloads import get_workload

    workloads = [get_workload(n) for n in budget.dse_workloads]
    config = DseConfig(iterations=budget.dse_iterations, seed=seed)
    drop_memo(config_fingerprint(config))  # guarantee a cold first run

    t0 = perf_counter()
    cold = Explorer(workloads, config, name=f"bench-{budget.name}").run()
    wall_cold = perf_counter() - t0

    t0 = perf_counter()
    warm_explorer = Explorer(workloads, config, name=f"bench-{budget.name}")
    warm_explorer.run()
    wall_warm = perf_counter() - t0

    stats = cold.stats
    spans = {name: st.as_dict() for name, st in tracer.summarize().items()}
    fast_mean = spans.get("scheduler.revalidate", {}).get("mean_s", 0.0)
    repair_mean = spans.get("scheduler.repair", {}).get("mean_s", 0.0)
    inner_total = stats.preserved_hits + stats.repairs
    return {
        "schema": BENCH_SCHEMA,
        "kind": "dse",
        "budget": budget.name,
        "seed": seed,
        "workloads": list(budget.dse_workloads),
        "iterations": stats.iterations,
        "accepted": stats.accepted,
        "objective": cold.choice.objective,
        "modeled_hours": cold.modeled_hours,
        "wall_seconds": wall_cold,
        "wall_seconds_warm": wall_warm,
        "memo_speedup": wall_cold / wall_warm if wall_warm > 0 else 0.0,
        "candidates_per_second": (
            stats.iterations / wall_cold if wall_cold > 0 else 0.0
        ),
        "preserved_hits": stats.preserved_hits,
        "repairs": stats.repairs,
        "preserved_hit_rate": (
            stats.preserved_hits / inner_total if inner_total else 0.0
        ),
        "fast_path_mean_s": fast_mean,
        "repair_path_mean_s": repair_mean,
        "fast_path_speedup": (
            repair_mean / fast_mean if fast_mean > 0 and repair_mean > 0 else 0.0
        ),
        "memo": warm_explorer.memo.stats.as_dict(),
        "spans": spans,
        "counters": tracer.counters(),
    }


def bench_sim(budget: BenchBudget, seed: int) -> Dict[str, Any]:
    """Simulation benchmark on the deterministic general overlay."""
    from ..adg import general_overlay
    from ..compiler import generate_variants
    from ..scheduler import schedule_workload
    from ..sim import simulate_batch, simulate_schedule, vector_core_available
    from ..workloads import get_workload

    sysadg = general_overlay()
    memo = ResultMemo(scope=f"bench-sim-{budget.name}")
    rows = []
    pairs = []
    total_stepped = 0
    total_wall = 0.0
    miss_wall_total = 0.0
    hit_wall_total = 0.0
    for name in budget.sim_workloads:
        schedule = schedule_workload(
            generate_variants(get_workload(name)), sysadg.adg, sysadg.params
        )
        if schedule is None:
            rows.append({"workload": name, "skipped": "does not map"})
            continue
        pairs.append((schedule, name))
        t0 = perf_counter()
        result = simulate_schedule(schedule, sysadg)
        wall = perf_counter() - t0
        t0 = perf_counter()
        simulate_memoized(schedule, sysadg, memo)  # miss: fingerprint + sim
        miss_wall = perf_counter() - t0
        t0 = perf_counter()
        simulate_memoized(schedule, sysadg, memo)  # hit: lookup only
        hit_wall = perf_counter() - t0
        total_stepped += result.stepped_cycles
        total_wall += wall
        miss_wall_total += miss_wall
        hit_wall_total += hit_wall
        rows.append(
            {
                "workload": name,
                "variant": result.variant,
                "cycles": result.cycles,
                "stepped_cycles": result.stepped_cycles,
                "extrapolated": result.extrapolated,
                "wall_seconds": wall,
                "cycles_per_second": (
                    result.stepped_cycles / wall if wall > 0 else 0.0
                ),
                "memo_miss_s": miss_wall,
                "memo_hit_s": hit_wall,
            }
        )
    # Batched pass: the same regions stepped through simulate_batch in one
    # call (the shape serve/soak consume), compared for byte-identity.
    serial = {name: row for row in rows for name in [row.get("workload")]}
    t0 = perf_counter()
    # dedupe=False: the bench set has no duplicate regions, so content-key
    # fingerprinting would only dilute the stepping-throughput number.
    batch_results = simulate_batch(
        [(s, sysadg) for s, _ in pairs], dedupe=False
    )
    batch_wall = perf_counter() - t0
    batch_stepped = sum(r.stepped_cycles for r in batch_results)
    identical = all(
        r.cycles == serial[name]["cycles"]
        and r.stepped_cycles == serial[name]["stepped_cycles"]
        for r, (_, name) in zip(batch_results, pairs)
    )
    return {
        "schema": BENCH_SCHEMA,
        "kind": "sim",
        "budget": budget.name,
        "seed": seed,
        "overlay": "general",
        "core": "vector" if vector_core_available() else "object",
        "workloads": list(budget.sim_workloads),
        "regions": rows,
        "stepped_cycles": total_stepped,
        "wall_seconds": total_wall,
        "cycles_per_second": total_stepped / total_wall if total_wall > 0 else 0.0,
        "batch": {
            "pairs": len(pairs),
            "stepped_cycles": batch_stepped,
            "wall_seconds": batch_wall,
            "identical_to_serial": identical,
        },
        "batch_cycles_per_second": (
            batch_stepped / batch_wall if batch_wall > 0 else 0.0
        ),
        "memo_speedup": (
            miss_wall_total / hit_wall_total if hit_wall_total > 0 else 0.0
        ),
        "memo": memo.stats.as_dict(),
    }


def bench_search(
    budget: BenchBudget, seed: int
) -> Dict[str, Any]:
    """Strategy shootout: every registered strategy, same trial budget.

    Solution-quality numbers (best objective, hypervolume, frontier
    size) are deterministic per (budget, seed); wall-clock rates are
    recorded for context but deliberately not regression-compared.
    """
    from ..dse import DseConfig
    from ..search import SearchSettings, frontier_doc, run_search
    from ..workloads import get_workload

    workloads = [get_workload(n) for n in budget.dse_workloads]
    trials = budget.search_trials
    config = DseConfig(iterations=trials, seed=seed)
    rows: Dict[str, Dict[str, Any]] = {}
    for strat in SEARCH_STRATEGIES:
        t0 = perf_counter()
        outcome = run_search(
            workloads,
            config,
            SearchSettings(
                strategy=strat,
                trials=trials,
                batch=1 if strat == "anneal" else 4,
                seed=seed,
            ),
            store=None,
            resume=False,
            name=f"bench-search-{budget.name}",
        )
        wall = perf_counter() - t0
        study = outcome.study
        front = frontier_doc(study)
        best = outcome.best_trial
        rows[strat] = {
            "trials": len(study.trials),
            "feasible": len(study.feasible_trials()),
            "best_objective": best.objective if best else 0.0,
            "hypervolume": front["hypervolume"],
            "frontier_size": len(front["points"]),
            "wall_seconds": wall,
            "trials_per_second": (
                len(study.trials) / wall if wall > 0 else 0.0
            ),
        }
    best_strategy = max(
        rows, key=lambda s: (rows[s]["best_objective"], s)
    )
    doc: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "kind": "search",
        "budget": budget.name,
        "seed": seed,
        "workloads": list(budget.dse_workloads),
        "trials": trials,
        "strategies": rows,
        "best_strategy": best_strategy,
    }
    # Flattened copies of the compared metrics (compare_reports reads
    # top-level keys only).
    for strat, row in rows.items():
        doc[f"{strat}_best_objective"] = row["best_objective"]
        doc[f"{strat}_hypervolume"] = row["hypervolume"]
    return doc


def run_search_bench(
    budget: BenchBudget,
    seed: int = 2,
    out_dir: str = ".",
    trace_path: Optional[str] = None,
    metrics: Optional[Any] = None,
) -> Tuple[Dict[str, Any], str]:
    """Run the strategy shootout; write ``BENCH_search.json``."""
    os.makedirs(out_dir, exist_ok=True)
    tracer = Tracer()
    with tracing(tracer):
        doc = bench_search(budget, seed)
    doc["spans"] = {
        name: st.as_dict() for name, st in tracer.summarize().items()
    }
    path = os.path.join(out_dir, "BENCH_search.json")
    with open(path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    if trace_path:
        tracer.write_chrome_trace(trace_path)
    if metrics is not None:
        tracer.flush_to_metrics(metrics)
        metrics.emit(
            "bench_search",
            **{
                k: v
                for k, v in doc.items()
                if k not in ("spans", "strategies")
            },
        )
    return doc, path


def run_bench(
    budget: BenchBudget,
    seed: int = 2,
    out_dir: str = ".",
    trace_path: Optional[str] = None,
    metrics: Optional[Any] = None,
) -> BenchReport:
    """Run both benchmark workloads; write ``BENCH_dse.json``/``BENCH_sim.json``.

    ``metrics`` is an ``engine.metrics.MetricsLogger``-compatible object
    (anything with ``emit``); the tracer's aggregate lands there as one
    ``trace_summary`` event alongside ``bench_dse``/``bench_sim`` events.
    """
    os.makedirs(out_dir, exist_ok=True)
    overhead = measure_overhead(budget.overhead_calls)
    tracer = Tracer()
    with tracing(tracer):
        dse_doc = bench_dse(budget, seed, tracer)
        sim_doc = bench_sim(budget, seed)
    dse_doc["overhead"] = overhead

    dse_path = os.path.join(out_dir, "BENCH_dse.json")
    sim_path = os.path.join(out_dir, "BENCH_sim.json")
    for path, doc in ((dse_path, dse_doc), (sim_path, sim_doc)):
        with open(path, "w") as f:
            json.dump(doc, f, indent=2, sort_keys=True)
            f.write("\n")
    if trace_path:
        tracer.write_chrome_trace(trace_path)
    if metrics is not None:
        tracer.flush_to_metrics(metrics)
        metrics.emit(
            "bench_dse",
            **{k: v for k, v in dse_doc.items() if k not in ("spans", "counters")},
        )
        metrics.emit(
            "bench_sim",
            **{k: v for k, v in sim_doc.items() if k != "regions"},
        )
    return BenchReport(
        dse=dse_doc,
        sim=sim_doc,
        overhead=overhead,
        dse_path=dse_path,
        sim_path=sim_path,
        tracer=tracer,
    )


def run_bench_sim(
    budget: BenchBudget,
    seed: int = 2,
    out_dir: str = ".",
    metrics: Optional[Any] = None,
) -> Tuple[Dict[str, Any], str]:
    """Run only the sim benchmark; write ``BENCH_sim.json``.

    The sim-only entry (``repro bench sim``) exists so the simulator perf
    gate can run in CI without paying for the DSE benchmark.
    """
    os.makedirs(out_dir, exist_ok=True)
    sim_doc = bench_sim(budget, seed)
    sim_path = os.path.join(out_dir, "BENCH_sim.json")
    with open(sim_path, "w") as f:
        json.dump(sim_doc, f, indent=2, sort_keys=True)
        f.write("\n")
    if metrics is not None:
        metrics.emit(
            "bench_sim",
            **{k: v for k, v in sim_doc.items() if k != "regions"},
        )
    return sim_doc, sim_path


def compare_reports(
    current_doc: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = 0.25,
) -> Dict[str, Any]:
    """Regression-check ``current_doc`` against a stored baseline.

    Compares the rate/ratio metrics for the baseline's ``kind``; a metric
    whose current/baseline ratio drops below ``1 - tolerance`` is a
    regression, above ``1 + tolerance`` an improvement, else unchanged.
    Metrics absent (or zero) on either side are reported as ``missing``
    and never fail the check.
    """
    kind = baseline.get("kind")
    if kind not in COMPARED_METRICS:
        raise ValueError(f"baseline has unknown kind {kind!r}")
    if current_doc.get("kind") != kind:
        raise ValueError(
            f"kind mismatch: current {current_doc.get('kind')!r} "
            f"vs baseline {kind!r}"
        )
    rows = []
    regressions = []
    for metric in COMPARED_METRICS[kind]:
        base = baseline.get(metric)
        cur = current_doc.get(metric)
        if not base or not cur:
            rows.append(
                {
                    "metric": metric,
                    "baseline": base,
                    "current": cur,
                    "ratio": None,
                    "status": "missing",
                }
            )
            continue
        ratio = cur / base
        if ratio <= 1 - tolerance:
            status = "regression"
            regressions.append(metric)
        elif ratio >= 1 + tolerance:
            status = "improvement"
        else:
            status = "unchanged"
        rows.append(
            {
                "metric": metric,
                "baseline": base,
                "current": cur,
                "ratio": ratio,
                "status": status,
            }
        )
    return {
        "kind": kind,
        "tolerance": tolerance,
        "rows": rows,
        "regressions": regressions,
        "ok": not regressions,
    }
