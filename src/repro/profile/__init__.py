"""Profiling layer: span tracing, result memoization, benchmarking.

* :mod:`repro.profile.tracer` — hierarchical span tracer with a
  context-manager API, Chrome-trace export, and ``engine.metrics``
  integration; near-zero overhead when no tracer is installed.
* :mod:`repro.profile.memo` — config-scoped memoization of schedule and
  simulation results keyed by ADG content fingerprints.
* :mod:`repro.profile.bench` — the ``repro bench`` workloads: fixed-seed
  DSE + simulation benchmarks emitting ``BENCH_dse.json`` /
  ``BENCH_sim.json`` with a ``--compare`` regression mode.  Imported
  lazily by the CLI (it pulls in the DSE stack); import it as
  ``repro.profile.bench`` explicitly.
"""

from .memo import (
    MemoStats,
    ResultMemo,
    clear_memos,
    drop_memo,
    memo_for_config,
    sim_key,
    simulate_memoized,
)
from .tracer import (
    NULL_SPAN,
    Span,
    SpanStat,
    Tracer,
    add_counter,
    current,
    install,
    span,
    tracing,
    uninstall,
)

__all__ = [
    "MemoStats",
    "NULL_SPAN",
    "ResultMemo",
    "Span",
    "SpanStat",
    "Tracer",
    "add_counter",
    "clear_memos",
    "current",
    "drop_memo",
    "install",
    "memo_for_config",
    "sim_key",
    "simulate_memoized",
    "span",
    "tracing",
    "uninstall",
]
