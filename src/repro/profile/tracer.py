"""Hierarchical span tracing for the compile→schedule→simulate→explore path.

A :class:`Tracer` records *spans* — named, nested wall-clock intervals —
through a context-manager API, plus scalar *counters*.  The four hot
layers (compiler lowering/variants, scheduler bind/place/route/repair,
simulator stepping, the DSE accept/reject loop) are instrumented with
module-level :func:`span` / :func:`add_counter` calls that resolve
against the currently *installed* tracer.

Design constraints (the ``repro bench`` CI gate asserts the first one):

* **Near-zero overhead when disabled.**  With no tracer installed — or a
  disabled one — :func:`span` is a single module-global load, a ``None``
  check, and a shared no-op context manager.  A tracer is only published
  to the fast-path global while it is enabled.
* **Thread-safe.**  Span stacks and completed-span buffers are
  thread-local; buffers are registered once per thread under a lock and
  merged at read time.  Counters take a lock (they are orders of
  magnitude rarer than spans).
* **Process-aware.**  Every span records its pid/tid, so traces from
  worker processes can be concatenated and still render correctly in
  the Chrome trace viewer (``chrome://tracing`` / Perfetto).

Exports: :meth:`Tracer.summarize` (per-span-name aggregates),
:meth:`Tracer.chrome_trace` / :meth:`Tracer.write_chrome_trace`
(Chrome ``traceEvents`` JSON), and :meth:`Tracer.flush_to_metrics`
(one ``trace_summary`` event into an ``engine.metrics`` JSONL stream).
"""

from __future__ import annotations

import json
import os
import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, List, Optional


@dataclass
class Span:
    """One completed named interval (times are ``perf_counter`` seconds)."""

    name: str
    start: float
    end: float
    depth: int
    tid: int
    pid: int
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class SpanStat:
    """Aggregate over every span sharing one name."""

    count: int = 0
    total_s: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0

    def absorb(self, duration: float) -> None:
        self.count += 1
        self.total_s += duration
        self.min_s = min(self.min_s, duration)
        self.max_s = max(self.max_s, duration)

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s if self.count else 0.0,
            "max_s": self.max_s,
        }


class _NullSpan:
    """Shared no-op context manager: the disabled-tracer fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager recording one span on exit (exceptions included)."""

    __slots__ = ("_tracer", "_name", "_attrs", "_start", "_depth")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> "_SpanHandle":
        local = self._tracer._local
        self._depth = getattr(local, "depth", 0)
        local.depth = self._depth + 1
        self._start = perf_counter()
        return self

    def __exit__(self, *exc: Any) -> bool:
        end = perf_counter()
        tracer = self._tracer
        tracer._local.depth = self._depth
        tracer._record(
            Span(
                name=self._name,
                start=self._start,
                end=end,
                depth=self._depth,
                tid=threading.get_ident(),
                pid=os.getpid(),
                attrs=self._attrs,
            )
        )
        return False


class Tracer:
    """Collects spans and counters for one profiled run."""

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = enabled
        self._t0 = perf_counter()
        self._local = threading.local()
        self._buffers: List[List[Span]] = []
        self._lock = threading.Lock()
        self._counters: Dict[str, float] = {}

    # -- state ---------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True
        _refresh_active()

    def disable(self) -> None:
        """Keep the tracer installed but make ``span()`` a no-op again."""
        self._enabled = False
        _refresh_active()

    # -- recording -----------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        return _SpanHandle(self, name, attrs)

    def add_counter(self, name: str, value: float = 1.0) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0.0) + value

    def _record(self, span: Span) -> None:
        buffer = getattr(self._local, "buffer", None)
        if buffer is None:
            buffer = self._local.buffer = []
            with self._lock:
                self._buffers.append(buffer)
        buffer.append(span)

    # -- reading -------------------------------------------------------
    def spans(self) -> List[Span]:
        """Every completed span, merged across threads, in start order."""
        with self._lock:
            merged: List[Span] = [s for buf in self._buffers for s in buf]
        merged.sort(key=lambda s: s.start)
        return merged

    def counters(self) -> Dict[str, float]:
        with self._lock:
            return dict(self._counters)

    def summarize(self) -> Dict[str, SpanStat]:
        """Per-span-name aggregates (count, total, mean, min, max)."""
        stats: Dict[str, SpanStat] = {}
        for span in self.spans():
            stats.setdefault(span.name, SpanStat()).absorb(span.duration)
        return stats

    # -- export --------------------------------------------------------
    def chrome_trace(self) -> Dict[str, Any]:
        """The trace as a Chrome ``traceEvents`` document."""
        events = [
            {
                "name": s.name,
                "cat": s.name.split(".", 1)[0],
                "ph": "X",
                "ts": (s.start - self._t0) * 1e6,
                "dur": s.duration * 1e6,
                "pid": s.pid,
                "tid": s.tid,
                "args": s.attrs,
            }
            for s in self.spans()
        ]
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, path: str) -> None:
        with open(path, "w") as f:
            json.dump(self.chrome_trace(), f, indent=1, sort_keys=True)

    def flush_to_metrics(self, logger: Any, event: str = "trace_summary") -> Dict[str, Any]:
        """Emit one aggregate event into an ``engine.metrics`` logger."""
        return logger.emit(
            event,
            spans={name: st.as_dict() for name, st in self.summarize().items()},
            counters=self.counters(),
        )


# ----------------------------------------------------------------------
# Module-level fast path.  `_active` is non-None only while a tracer is
# both installed and enabled, so the disabled check is a single load.
# ----------------------------------------------------------------------
_installed: Optional[Tracer] = None
_active: Optional[Tracer] = None


def _refresh_active() -> None:
    global _active
    tracer = _installed
    _active = tracer if (tracer is not None and tracer.enabled) else None


def install(tracer: Tracer) -> Tracer:
    """Make ``tracer`` the process-wide target of :func:`span`."""
    global _installed
    _installed = tracer
    _refresh_active()
    return tracer


def uninstall() -> None:
    global _installed
    _installed = None
    _refresh_active()


def current() -> Optional[Tracer]:
    return _installed


def span(name: str, **attrs: Any):
    """Open a span on the installed tracer; no-op when none is active."""
    tracer = _active
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


def add_counter(name: str, value: float = 1.0) -> None:
    """Bump a counter on the installed tracer; no-op when none is active."""
    tracer = _active
    if tracer is not None:
        tracer.add_counter(name, value)


class tracing:
    """``with tracing() as t:`` — install a tracer for a block, restoring
    whatever was installed before (nesting-safe)."""

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Tracer:
        self._previous = current()
        install(self.tracer)
        return self.tracer

    def __exit__(self, *exc: Any) -> bool:
        if self._previous is not None:
            install(self._previous)
        else:
            uninstall()
        return False
