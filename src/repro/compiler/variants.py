"""Pre-generation of transformation variants (Section V-A).

During DSE, recompiling each workload for every candidate hardware would
dominate exploration time.  Instead the compiler pre-generates a *family* of
mDFGs per region — different unroll degrees, recurrence-engine versus
memory read-modify-write forms — and the DSE schedules whichever member maps
best onto the current ADG.  Only one member needs to schedule for the
hardware to be considered valid for that workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..dfg import MDFG, StreamKind
from ..ir import Workload
from ..profile.tracer import span
from .lowering import LoweringError, lower, max_unroll


@dataclass
class VariantSet:
    """All pre-compiled mDFG variants of one workload region.

    Variants are ordered most-aggressive first (highest instruction
    bandwidth); the "relax DFG complexity" fallback of Fig. 3 is simply a
    walk down this list.
    """

    workload: Workload
    variants: List[MDFG] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.variants.sort(key=lambda m: (-m.insts_per_cycle, m.variant))

    @property
    def best(self) -> MDFG:
        return self.variants[0]

    def relaxations_of(self, mdfg: MDFG) -> List[MDFG]:
        """Variants strictly less aggressive than ``mdfg``, best first."""
        idx = self.variants.index(mdfg)
        return self.variants[idx + 1 :]

    def by_name(self, variant: str) -> MDFG:
        for m in self.variants:
            if m.variant == variant:
                return m
        raise KeyError(f"no variant {variant!r} for {self.workload.name}")


def unroll_candidates(workload: Workload) -> List[int]:
    """Powers of two up to the datapath/trip-count limit."""
    limit = max_unroll(workload)
    factors = []
    u = 1
    while u <= limit:
        factors.append(u)
        u *= 2
    return factors


def generate_variants(workload: Workload) -> VariantSet:
    """Pre-compile every useful (unroll, recurrence) combination."""
    with span("compiler.variants", workload=workload.name):
        variants: List[MDFG] = []
        for unroll in unroll_candidates(workload):
            for use_rec in (True, False):
                try:
                    mdfg = lower(workload, unroll=unroll, use_recurrence=use_rec)
                except LoweringError:
                    continue
                # Skip the rmw form when it is identical to the recurrence
                # form (i.e. the workload has no outer recurrence to begin
                # with).
                if not use_rec and any(
                    _same_structure(mdfg, other) for other in variants
                ):
                    continue
                variants.append(mdfg)
        if not variants:
            raise LoweringError(f"{workload.name}: no lowerable variants")
        return VariantSet(workload=workload, variants=variants)


def _same_structure(a: MDFG, b: MDFG) -> bool:
    """Cheap structural equivalence: same unroll and stream signature."""
    if a.unroll != b.unroll:
        return False
    sig_a = sorted((s.kind.value, s.array or "", s.lanes) for s in a.streams)
    sig_b = sorted((s.kind.value, s.array or "", s.lanes) for s in b.streams)
    return sig_a == sig_b


def uses_recurrence_engine(mdfg: MDFG) -> bool:
    """Whether any stream of ``mdfg`` needs the recurrence engine."""
    return any(s.kind is StreamKind.RECURRENCE for s in mdfg.streams)
