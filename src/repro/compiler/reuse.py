"""Compiler reuse analysis (Section IV-B of the paper).

For every array access the analyzer computes:

* **traffic** — how many times the access executes: the product of all loop
  trip counts (every innermost iteration issues it once).
* **footprint** — how many distinct elements it touches: the span of the
  affine expression joined over all loop bounds (for the paper's FIR
  example ``a[io*32+ii+j]`` this yields 128+128-1 = 255).
* **stationary reuse** — if the innermost loop variable does not appear in
  the index, the same element is re-read ``trip(innermost)`` times in a row
  and can be held stationary in the port FIFO.
* **recurrent reuse** — a read/write pair on the same index expression whose
  index omits some loop: the data cycles through the pipeline once per
  iteration of the omitted loop and can use the recurrence engine when the
  concurrent working set fits on chip.

Indirect accesses ``a[b[i]]`` follow the paper's simplifying assumptions:
``b`` is affine-analyzable and the indirected accesses are uniform over
``a``, so traffic is the trip product and footprint is ``len(a)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir import Affine, IndexExpr, IndirectIndex, Statement, Workload


@dataclass(frozen=True)
class AccessInfo:
    """Reuse facts for one array access."""

    array: str
    index: IndexExpr
    is_write: bool
    traffic: int
    footprint: int
    stationary_reuse: int
    indirect: bool

    @property
    def general_reuse(self) -> float:
        if self.footprint <= 0:
            return 1.0
        return max(1.0, self.traffic / self.footprint)


@dataclass(frozen=True)
class RecurrenceInfo:
    """A read-modify-write recurrence on ``array`` (Section IV-B).

    Attributes:
        array: the recurring array.
        carried_over: name of the outermost loop variable absent from the
            index (the loop that carries the recurrence).
        recurrences: times each element recurs (product of absent trips).
        depth: concurrent elements in flight (product of trips of present
            loops *inner* to the carrying loop) — the on-chip buffer needed
            for the recurrence engine to be legal.
    """

    array: str
    index: Affine
    carried_over: str
    recurrences: int
    depth: int


def affine_span(workload: Workload, affine: Affine) -> int:
    """Distinct elements covered by ``affine`` over the full iteration space.

    Computed by joining per-loop bounds: with non-negative coefficients the
    touched interval is ``[const, const + sum(coeff * (trip-1))]``.  Negative
    coefficients widen the low side symmetrically.
    """
    lo = affine.const
    hi = affine.const
    for var, coeff in affine.coeffs:
        extent = coeff * (workload.loop(var).trip - 1)
        if extent >= 0:
            hi += extent
        else:
            lo += extent
    return hi - lo + 1


def access_traffic(workload: Workload) -> int:
    """Executions of an innermost-body access.

    Variable-trip loops count at their average (effective) trip so that
    bandwidth math stays consistent with the iteration counts the region
    actually executes.
    """
    return int(round(workload.effective_trip_product))


def stationary_factor(workload: Workload, affine: Affine) -> int:
    """Port-FIFO (stationary) reuse: innermost trips with an unchanged index."""
    if affine.involves(workload.innermost.var):
        return 1
    return workload.innermost.trip


def analyze_access(
    workload: Workload, array: str, index: IndexExpr, is_write: bool
) -> AccessInfo:
    """Compute the reuse facts for one access."""
    traffic = access_traffic(workload)
    if isinstance(index, IndirectIndex):
        footprint = workload.array(array).size
        stationary = 1
        indirect = True
    else:
        assert isinstance(index, Affine)
        footprint = min(affine_span(workload, index), workload.array(array).size)
        stationary = stationary_factor(workload, index)
        indirect = False
    return AccessInfo(
        array=array,
        index=index,
        is_write=is_write,
        traffic=traffic,
        footprint=footprint,
        stationary_reuse=stationary,
        indirect=indirect,
    )


def find_recurrence(workload: Workload, stmt: Statement) -> Optional[RecurrenceInfo]:
    """Detect an outer-loop read-modify-write recurrence for ``stmt``.

    Requires: the statement both reads and writes ``target`` at the same
    index, the index *does* vary with the innermost loop (otherwise it is a
    plain accumulator reduction), and at least one loop variable is absent
    from the index (that loop carries the recurrence).
    """
    index = stmt.target_index
    if not isinstance(index, Affine):
        return None
    from ..ir import Load, loads_in

    reads_target = any(
        isinstance(l, Load) and l.array == stmt.target_array and l.index == index
        for l in loads_in(stmt.expr)
    )
    if not reads_target:
        return None
    if not index.involves(workload.innermost.var):
        return None  # innermost reduction: handled by a PE accumulator
    absent = [l for l in workload.loops if not index.involves(l.var)]
    if not absent:
        return None
    carrier = absent[0]  # outermost absent loop carries the recurrence
    recurrences = 1
    for loop in absent:
        recurrences *= loop.trip
    carrier_depth = workload.loop_depth(carrier.var)
    depth = 1
    for loop in workload.loops[carrier_depth + 1 :]:
        if index.involves(loop.var):
            depth *= loop.trip
    return RecurrenceInfo(
        array=stmt.target_array,
        index=index,
        carried_over=carrier.var,
        recurrences=recurrences,
        depth=depth,
    )


@dataclass
class WorkloadReuse:
    """Aggregated reuse analysis for a whole region."""

    accesses: List[AccessInfo]
    recurrences: List[RecurrenceInfo]

    def for_array(self, array: str) -> List[AccessInfo]:
        return [a for a in self.accesses if a.array == array]

    def array_traffic(self, array: str) -> int:
        return sum(a.traffic for a in self.for_array(array))

    def array_footprint(self, array: str) -> int:
        infos = self.for_array(array)
        return max((a.footprint for a in infos), default=0)

    def recurrence_for(self, array: str) -> Optional[RecurrenceInfo]:
        for rec in self.recurrences:
            if rec.array == array:
                return rec
        return None


def analyze_workload(workload: Workload) -> WorkloadReuse:
    """Run reuse analysis over every access of the region."""
    accesses = [
        analyze_access(workload, array, index, is_write)
        for array, index, is_write in workload.all_accesses()
    ]
    recurrences = []
    for stmt in workload.statements:
        rec = find_recurrence(workload, stmt)
        if rec is not None:
            recurrences.append(rec)
    return WorkloadReuse(accesses=accesses, recurrences=recurrences)
