"""Lowering a workload region to an mDFG at a chosen vectorization degree.

This implements the paper's *generic transformation* (Section II-B): the
innermost body is sliced into computational instructions (which become the
compute DFG) and memory accesses (which become streams + ports), then the
innermost loop is unrolled ``unroll`` times to widen the datapath.

Reduction/recurrence handling follows Section IV-B:

* a statement whose target does not vary with the innermost loop becomes a
  reduction tree + PE-resident accumulator (writes shrink to one per outer
  iteration);
* a read-modify-write whose index skips an outer loop may route through the
  recurrence engine (``use_recurrence=True``), eliding the per-iteration
  memory traffic, or fall back to memory read-modify-write.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..dfg import MDFG, ArrayPlacement, StreamKind
from ..ir import (
    Affine,
    BinOp,
    Const,
    Expr,
    IndexExpr,
    IndirectIndex,
    IterValue,
    Load,
    Op,
    REDUCIBLE_OPS,
    Select,
    Statement,
    UnOp,
    Workload,
    loads_in,
)
from .reuse import WorkloadReuse, analyze_workload

#: Widest datapath the generated PEs support (matches the paper's general
#: overlay, which uses maximum 512-bit vectorization).
MAX_VECTOR_BITS = 512

#: Arrays whose traffic/footprint ratio reaches this prefer the scratchpad.
SPAD_REUSE_THRESHOLD = 2.0


MEMORY_LINE_BYTES = 64


def stride_overfetch(index, inner_var: str, elem_bytes: int) -> float:
    """Line-granularity overfetch of a strided innermost access.

    A stream whose innermost stride is ``s`` elements touches roughly
    ``min(s, line/elem)`` line bytes per useful element; unit-stride,
    stationary, and indirect (modeled uniform) accesses fetch cleanly.
    """
    if not isinstance(index, Affine):
        return 1.0
    coeff = abs(index.coefficient(inner_var))
    if coeff <= 1:
        return 1.0
    return float(min(coeff, max(1, MEMORY_LINE_BYTES // elem_bytes)))


class LoweringError(ValueError):
    """Raised when a workload cannot be lowered at the requested settings."""


@dataclass
class _StreamRef:
    """Bookkeeping for a deduplicated read access."""

    stream_id: int
    port_id: int
    lanes: int


def max_unroll(workload: Workload) -> int:
    """Largest innermost unroll representable on the widest PE datapath."""
    by_width = MAX_VECTOR_BITS // workload.dtype.bits
    return max(1, min(by_width, workload.innermost.trip))


def tile_parallelism(workload: Workload, unroll: int) -> float:
    """Independent coarse-grain work items for multi-tile partitioning.

    The product of all parallel-loop trip counts, with the innermost loop
    discounted by the vectorization degree (its lanes are consumed by the
    datapath, not by tiles).
    """
    par = 1.0
    for loop in workload.loops[:-1]:
        if loop.parallel:
            par *= loop.trip
    inner = workload.innermost
    if inner.parallel:
        par *= max(1.0, inner.trip / unroll)
    return par


def lower(
    workload: Workload,
    unroll: int = 1,
    use_recurrence: bool = True,
) -> MDFG:
    """Lower ``workload`` to an mDFG with the given innermost unroll factor.

    Raises:
        LoweringError: if the unroll factor exceeds what the datapath or
            the innermost trip count supports.
    """
    from ..profile.tracer import span

    with span("compiler.lower", workload=workload.name, unroll=unroll):
        return _lower(workload, unroll, use_recurrence)


def _lower(
    workload: Workload,
    unroll: int,
    use_recurrence: bool,
) -> MDFG:
    if unroll < 1:
        raise LoweringError(f"unroll factor {unroll} < 1")
    if unroll > max_unroll(workload):
        raise LoweringError(
            f"{workload.name}: unroll {unroll} exceeds max {max_unroll(workload)}"
        )
    reuse = analyze_workload(workload)
    variant = f"u{unroll}" + ("" if use_recurrence else "-rmw")
    mdfg = MDFG(
        workload=workload.name,
        variant=variant,
        unroll=unroll,
        dtype=workload.dtype,
        iterations=workload.effective_trip_product,
        inner_trip=workload.innermost.trip,
        tile_parallelism=tile_parallelism(workload, unroll),
    )
    builder = _Lowerer(workload, reuse, mdfg, unroll, use_recurrence)
    builder.run()
    mdfg.validate()
    return mdfg


class _Lowerer:
    """Stateful helper carrying the maps built during one lowering."""

    def __init__(
        self,
        workload: Workload,
        reuse: WorkloadReuse,
        mdfg: MDFG,
        unroll: int,
        use_recurrence: bool,
    ):
        self.w = workload
        self.reuse = reuse
        self.mdfg = mdfg
        self.unroll = unroll
        self.use_recurrence = use_recurrence
        self.inner_var = workload.innermost.var
        # Dedup maps
        self._read_streams: Dict[Tuple[str, IndexExpr], _StreamRef] = {}
        self._iter_streams: Dict[str, _StreamRef] = {}
        self._array_nodes: Dict[str, int] = {}
        self._array_stream_ids: Dict[str, List[int]] = {}
        # Statements whose target-read is satisfied without a memory stream.
        self._elided_target_reads: Dict[int, str] = {}

    # ------------------------------------------------------------------
    def run(self) -> None:
        for idx, stmt in enumerate(self.w.statements):
            self._lower_statement(idx, stmt)
        self._coalesce_adjacent_streams()
        self._materialize_arrays()

    def _coalesce_adjacent_streams(self) -> None:
        """Adjacent strided streams fetch whole lines cooperatively.

        Streams on the same array whose affine patterns differ only in the
        constant cover the stride between them (e.g. fft's ``x[2j]`` and
        ``x[2j+1]``), so together they consume every fetched line byte; the
        compiler coalesces their requests (Q2) and the overfetch vanishes.
        """
        groups: Dict[tuple, List[int]] = {}
        for (array, index), ref in self._read_streams.items():
            if not isinstance(index, Affine):
                continue
            stream = self.mdfg.node(ref.stream_id)
            if stream.stride_overfetch <= 1.0:
                continue
            groups.setdefault((array, index.coeffs), []).append(ref.stream_id)
        for (_array, coeffs), stream_ids in groups.items():
            if len(stream_ids) < 2:
                continue
            stride = abs(dict(coeffs).get(self.inner_var, 0))
            covered = min(stride, len(stream_ids))
            for sid in stream_ids:
                stream = self.mdfg.node(sid)
                stream.stride_overfetch = max(
                    1.0, stream.stride_overfetch / covered
                )

    # ------------------------------------------------------------------
    # Streams and ports
    # ------------------------------------------------------------------
    def _access_lanes(self, index: IndexExpr) -> int:
        """Vector lanes of a read access after unrolling the innermost loop."""
        if isinstance(index, IndirectIndex):
            return self.unroll if index.involves(self.inner_var) else 1
        assert isinstance(index, Affine)
        return self.unroll if index.involves(self.inner_var) else 1

    def _port_stationary(self, index: IndexExpr) -> int:
        """Firings each stationary value is held for, post-unroll."""
        involves = index.involves(self.inner_var)
        if involves:
            return 1
        return max(1, self.w.innermost.trip // self.unroll)

    def _needs_padding(self, lanes: int) -> bool:
        return lanes > 1 and self.w.innermost.trip % lanes != 0

    def _read_port(self, array: str, index: IndexExpr) -> _StreamRef:
        """Get-or-create the (stream, input port) pair for a read access."""
        key = (array, index)
        if key in self._read_streams:
            return self._read_streams[key]
        dtype = self.w.array_dtype(array)
        lanes = self._access_lanes(index)
        info = next(
            a
            for a in self.reuse.accesses
            if a.array == array and a.index == index and not a.is_write
        )
        port = self.mdfg.add_input_port(
            width_bytes=lanes * dtype.bytes,
            stationary=self._port_stationary(index),
            needs_padding=self._needs_padding(lanes),
        )
        pattern = index.index if isinstance(index, IndirectIndex) else index
        stream = self.mdfg.add_stream(
            kind=StreamKind.MEMORY_READ,
            array=array,
            dtype=dtype,
            port=port,
            lanes=lanes,
            pattern=pattern if isinstance(pattern, Affine) else None,
            indirect=info.indirect,
            traffic=info.traffic,
            footprint=info.footprint,
            stationary_reuse=info.stationary_reuse,
            stride_overfetch=stride_overfetch(
                index, self.inner_var, dtype.bytes
            ),
        )
        ref = _StreamRef(stream, port, lanes)
        self._read_streams[key] = ref
        self._array_stream_ids.setdefault(array, []).append(stream)
        if isinstance(index, IndirectIndex):
            # The index stream itself is a separate affine read of the
            # index array (e.g. ``col[]`` in CRS spmv).
            self._read_port(index.index_array, index.index)
        return ref

    def _is_config_constant(self, load: Load) -> bool:
        """True for reads with a constant index from a read-only array."""
        if not isinstance(load.index, Affine) or load.index.variables():
            return False
        written = {s.target_array for s in self.w.statements}
        return load.array not in written

    def _iter_port(self, var: str) -> _StreamRef:
        """Get-or-create the generate-engine stream for a loop-var value."""
        if var in self._iter_streams:
            return self._iter_streams[var]
        dtype = self.w.dtype
        lanes = self.unroll if var == self.inner_var else 1
        port = self.mdfg.add_input_port(width_bytes=lanes * dtype.bytes)
        trips = int(round(self.w.effective_trip_product))
        stream = self.mdfg.add_stream(
            kind=StreamKind.GENERATE,
            array=None,
            dtype=dtype,
            port=port,
            lanes=lanes,
            traffic=trips,
            footprint=trips,
        )
        ref = _StreamRef(stream, port, lanes)
        self._iter_streams[var] = ref
        return ref

    # ------------------------------------------------------------------
    # Expression lowering
    # ------------------------------------------------------------------
    def _lower_expr(
        self, expr: Expr, lanes: int, skip_load: Optional[Load] = None
    ) -> Optional[int]:
        """Lower a value expression; returns the producing node id.

        Constants return ``None`` (they become PE immediates).  ``skip_load``
        suppresses the target re-read of reduction statements (the
        accumulator or recurrence engine supplies that value instead).
        """
        dtype = self.w.dtype
        if isinstance(expr, Const):
            return None
        if isinstance(expr, Load):
            if skip_load is not None and expr == skip_load:
                return None
            if self._is_config_constant(expr):
                # Loop-invariant scalars (filter taps, weights) are loaded
                # into PE constant registers at configuration time rather
                # than occupying a stream + vector port.
                return None
            return self._read_port(expr.array, expr.index).port_id
        if isinstance(expr, IterValue):
            return self._iter_port(expr.var).port_id
        if isinstance(expr, BinOp):
            if expr.op in REDUCIBLE_OPS:
                return self._lower_balanced_chain(expr, lanes, skip_load)
            lhs = self._lower_expr(expr.lhs, lanes, skip_load)
            rhs = self._lower_expr(expr.rhs, lanes, skip_load)
            operands = tuple(x for x in (lhs, rhs) if x is not None)
            return self.mdfg.add_compute(expr.op, dtype, lanes, operands)
        if isinstance(expr, UnOp):
            operand = self._lower_expr(expr.operand, lanes, skip_load)
            operands = tuple(x for x in (operand,) if x is not None)
            return self.mdfg.add_compute(expr.op, dtype, lanes, operands)
        if isinstance(expr, Select):
            parts = [
                self._lower_expr(e, lanes, skip_load)
                for e in (expr.pred, expr.then, expr.other)
            ]
            operands = tuple(x for x in parts if x is not None)
            return self.mdfg.add_compute(Op.SELECT, dtype, lanes, operands)
        raise LoweringError(f"cannot lower expression {expr!r}")

    def _reduction_body(self, stmt: Statement, target_read: Load):
        """The non-target part of a reduction expression.

        ``accumulate`` builds ``target (op) rest``; stripping the outer
        combine avoids emitting a redundant unary combine node (the
        accumulator or recurrence-combine supplies that operation).
        """
        expr = stmt.expr
        if isinstance(expr, BinOp) and expr.lhs == target_read:
            return expr.rhs
        if isinstance(expr, BinOp) and expr.rhs == target_read:
            return expr.lhs
        return expr

    def _lower_balanced_chain(
        self, expr: BinOp, lanes: int, skip_load: Optional[Load]
    ) -> Optional[int]:
        """Lower a chain of one associative op as a balanced tree.

        Linear chains like blur's ``(((a+b)+c)+d)...`` would otherwise
        create unbounded operand-arrival skew on the fabric; rebalancing
        keeps the pipeline depth logarithmic (a standard spatial-compiler
        transformation).
        """
        op = expr.op
        terms: List[Expr] = []

        def flatten(e: Expr) -> None:
            if isinstance(e, BinOp) and e.op == op:
                flatten(e.lhs)
                flatten(e.rhs)
            else:
                terms.append(e)

        flatten(expr)
        lowered = [self._lower_expr(t, lanes, skip_load) for t in terms]
        values = [v for v in lowered if v is not None]
        n_immediates = len(lowered) - len(values)
        if not values:
            return None
        if len(values) == 1:
            if n_immediates:
                # Fold the constants into one combining node.
                return self.mdfg.add_compute(op, self.w.dtype, lanes, tuple(values))
            return values[0]
        while len(values) > 1:
            nxt = []
            for i in range(0, len(values) - 1, 2):
                nxt.append(
                    self.mdfg.add_compute(
                        op, self.w.dtype, lanes, (values[i], values[i + 1])
                    )
                )
            if len(values) % 2:
                nxt.append(values[-1])
            values = nxt
        return values[0]

    def _reduction_tree(self, value: int, lanes: int, op: Op) -> int:
        """Collapse ``lanes`` down to one with a log-depth tree of ``op``."""
        dtype = self.w.dtype
        while lanes > 1:
            lanes //= 2
            value = self.mdfg.add_compute(op, dtype, lanes, (value,))
        return value

    # ------------------------------------------------------------------
    # Statement lowering
    # ------------------------------------------------------------------
    def _lower_statement(self, idx: int, stmt: Statement) -> None:
        target_read = Load(stmt.target_array, stmt.target_index)
        inner_reduction = (
            stmt.is_reduction
            and not stmt.target_index.involves(self.inner_var)
        )
        recurrence = self.reuse.recurrence_for(stmt.target_array)
        use_rec = (
            recurrence is not None
            and self.use_recurrence
            and stmt.is_reduction
            and not inner_reduction
        )

        if inner_reduction:
            self._lower_inner_reduction(stmt, target_read)
        elif use_rec:
            self._lower_recurrence(stmt, target_read, recurrence)
        else:
            self._lower_plain(stmt)

    def _store_stream(
        self, stmt: Statement, value: int, lanes: int, traffic: int
    ) -> None:
        dtype = self.w.array_dtype(stmt.target_array)
        info = next(
            a
            for a in self.reuse.accesses
            if a.array == stmt.target_array
            and a.index == stmt.target_index
            and a.is_write
        )
        port = self.mdfg.add_output_port(width_bytes=lanes * dtype.bytes)
        self.mdfg.add_edge(value, port)
        pattern = stmt.target_index
        stream = self.mdfg.add_stream(
            kind=StreamKind.MEMORY_WRITE,
            array=stmt.target_array,
            dtype=dtype,
            port=port,
            lanes=lanes,
            pattern=pattern if isinstance(pattern, Affine) else None,
            indirect=isinstance(pattern, IndirectIndex),
            traffic=traffic,
            footprint=info.footprint,
            stride_overfetch=stride_overfetch(
                stmt.target_index, self.inner_var, dtype.bytes
            ),
        )
        self._array_stream_ids.setdefault(stmt.target_array, []).append(stream)

    def _lower_plain(self, stmt: Statement) -> None:
        """Straight-line statement: full-rate read streams and write stream."""
        value = self._lower_expr(stmt.expr, self.unroll)
        if value is None:
            raise LoweringError(
                f"{self.w.name}: statement computes a constant; nothing to map"
            )
        lanes = (
            self.unroll if stmt.target_index.involves(self.inner_var) else 1
        )
        self._store_stream(
            stmt, value, lanes, traffic=int(round(self.w.effective_trip_product))
        )

    def _lower_inner_reduction(self, stmt: Statement, target_read: Load) -> None:
        """Innermost reduction: tree + accumulator; one write per outer iter."""
        op = stmt.reduction_op
        assert op is not None
        body = self._reduction_body(stmt, target_read)
        value = self._lower_expr(body, self.unroll, skip_load=target_read)
        if value is None:
            raise LoweringError(f"{self.w.name}: empty reduction body")
        value = self._reduction_tree(value, self.unroll, op)
        acc = self.mdfg.add_compute(
            op, self.w.dtype, 1, (value,), accumulator=True
        )
        outer_iters = max(
            1, int(round(self.w.effective_trip_product / self.w.innermost.trip))
        )
        self._store_stream(stmt, acc, lanes=1, traffic=outer_iters)

    def _lower_recurrence(self, stmt, target_read, recurrence) -> None:
        """Outer recurrence via the recurrence stream engine (Fig. 5's c[]).

        The running values cycle out-port -> recurrence engine -> in-port;
        main memory sees only the initial load and final store (footprint,
        not traffic).
        """
        dtype = self.w.array_dtype(stmt.target_array)
        lanes = self.unroll if stmt.target_index.involves(self.inner_var) else 1
        in_port = self.mdfg.add_input_port(width_bytes=lanes * dtype.bytes)
        rec_in = self.mdfg.add_stream(
            kind=StreamKind.RECURRENCE,
            array=stmt.target_array,
            dtype=dtype,
            port=in_port,
            lanes=lanes,
            traffic=int(round(self.w.effective_trip_product)),
            footprint=recurrence.depth,
            recurrence_depth=recurrence.depth,
        )
        # Compute reads the recurring value from the recurrence in-port.
        body = self._reduction_body(stmt, target_read)
        value = self._lower_expr(body, self.unroll, skip_load=target_read)
        if value is None:
            raise LoweringError(f"{self.w.name}: empty recurrence body")
        combine_opnds = (in_port, value)
        op = stmt.reduction_op
        assert op is not None
        combined = self.mdfg.add_compute(op, self.w.dtype, self.unroll, combine_opnds)
        out_port = self.mdfg.add_output_port(width_bytes=lanes * dtype.bytes)
        self.mdfg.add_edge(combined, out_port)
        rec_out = self.mdfg.add_stream(
            kind=StreamKind.RECURRENCE,
            array=stmt.target_array,
            dtype=dtype,
            port=out_port,
            lanes=lanes,
            traffic=int(round(self.w.effective_trip_product)),
            footprint=recurrence.depth,
            recurrence_depth=recurrence.depth,
        )
        # Symmetric pairing (validated by MDFG.validate).
        in_node = self.mdfg.node(rec_in)
        out_node = self.mdfg.node(rec_out)
        in_node.recurrent_pair = rec_out
        out_node.recurrent_pair = rec_in
        self._array_stream_ids.setdefault(stmt.target_array, []).extend(
            [rec_in, rec_out]
        )
        self._elided_target_reads[id(stmt)] = stmt.target_array

    # ------------------------------------------------------------------
    # Array nodes
    # ------------------------------------------------------------------
    def _materialize_arrays(self) -> None:
        indirect_targets = {
            s.array
            for s in self.mdfg.streams
            if s.indirect and s.kind is StreamKind.MEMORY_READ
        }
        for array, stream_ids in sorted(self._array_stream_ids.items()):
            dtype = self.w.array_dtype(array)
            streams = [self.mdfg.node(sid) for sid in stream_ids]
            footprint_elems = max(
                (s.footprint for s in streams if s.is_memory), default=0
            )
            if footprint_elems == 0:
                # Recurrence-only arrays still occupy their full extent in
                # memory for the initial/final transfers.
                footprint_elems = self.w.array(array).size
            traffic_elems = sum(s.traffic for s in streams if s.is_memory)
            if traffic_elems == 0:
                # Recurrence-only array: memory sees one load + one store.
                traffic_elems = 2 * self.w.array(array).size
            reuse_ratio = traffic_elems / max(1, footprint_elems)
            is_indirect_target = array in indirect_targets
            prefer_spad = (
                reuse_ratio >= SPAD_REUSE_THRESHOLD or is_indirect_target
            )
            parallel_vars = {l.var for l in self.w.loops if l.parallel}
            partitionable = any(
                s.pattern is not None
                and any(s.pattern.involves(v) for v in parallel_vars)
                for sid in stream_ids
                for s in [self.mdfg.node(sid)]
                if s.is_memory
            )
            footprint_bytes = footprint_elems * dtype.bytes
            if prefer_spad:
                footprint_bytes *= 2  # double-buffering headroom
            node = self.mdfg.add_array(
                array=array,
                dtype=dtype,
                size_elems=self.w.array(array).size,
                footprint_bytes=footprint_bytes,
                traffic_bytes=traffic_elems * dtype.bytes,
                preferred=(
                    ArrayPlacement.SPAD if prefer_spad else ArrayPlacement.DRAM
                ),
                indirect_target=is_indirect_target,
                partitionable=partitionable,
            )
            self.mdfg.attach_streams(node, tuple(stream_ids))
