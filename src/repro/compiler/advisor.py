"""Mapping advisor: explain how well a workload fits an existing overlay.

Section VIII-Q5 suggests "the compiler could inform the user when a
significant performance improvement is expected, to signal when to perform
DSE again."  This module implements that feedback: it schedules every
variant of a workload onto a given overlay, explains which variants failed
and why, and quantifies the gap between what the overlay delivers and what
the workload's best variant could deliver on sufficient hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..adg import ADG, SystemParams
from ..dfg import MDFG
from ..ir import Workload
from ..scheduler import Schedule, ScheduleError, schedule_mdfg
from ..scheduler.binder import bind_memory
from ..scheduler.placer import place_and_route
from ..scheduler.router import RoutingState
from ..scheduler.schedule import Schedule as _Schedule
from .variants import VariantSet, generate_variants

#: Recommend re-running the DSE when the best *unmappable* variant promises
#: at least this much more instruction bandwidth than the best mapped one.
REDSE_GAIN_THRESHOLD = 1.5


@dataclass
class VariantVerdict:
    """Outcome of trying one variant on the overlay."""

    variant: str
    mapped: bool
    projected_ipc: float = 0.0
    failure_reason: Optional[str] = None
    insts_per_cycle: float = 0.0


@dataclass
class MappingAdvice:
    """The advisor's full report for one (workload, overlay) pair."""

    workload: str
    verdicts: List[VariantVerdict]
    best_mapped: Optional[VariantVerdict]
    potential_gain: float          # best unmapped insts / best mapped insts
    recommend_redse: bool

    def summary(self) -> str:
        lines = [f"mapping advice for {self.workload}:"]
        for v in self.verdicts:
            if v.mapped:
                lines.append(
                    f"  {v.variant:10s} OK   projected IPC {v.projected_ipc:.1f}"
                )
            else:
                lines.append(
                    f"  {v.variant:10s} FAIL {v.failure_reason}"
                )
        if self.best_mapped is None:
            lines.append(
                "  -> workload does NOT map; rerun the DSE including it"
            )
        elif self.recommend_redse:
            lines.append(
                f"  -> a {self.potential_gain:.1f}x faster variant exists but "
                f"does not fit this overlay; re-running DSE is worthwhile"
            )
        else:
            lines.append("  -> overlay serves this workload well")
        return "\n".join(lines)


def _try_variant(mdfg: MDFG, adg: ADG, params: SystemParams) -> VariantVerdict:
    """Schedule one variant, capturing the precise failure reason.

    Unmappable variants still get a projected IPC via an idealized binding
    (what they *would* deliver on an overlay generous enough to host them);
    the gap between that and the best mapped variant is the re-DSE signal.
    """
    from ..model.perf import estimate_ipc, preferred_binding

    schedule = _Schedule(mdfg=mdfg, adg_version=adg.version)
    try:
        bind_memory(mdfg, adg, schedule)
        place_and_route(mdfg, adg, schedule, RoutingState(adg))
    except ScheduleError as exc:
        ideal = estimate_ipc(mdfg, preferred_binding(mdfg, adg), adg, params)
        return VariantVerdict(
            variant=mdfg.variant,
            mapped=False,
            projected_ipc=ideal.ipc,
            failure_reason=str(exc),
            insts_per_cycle=mdfg.insts_per_cycle,
        )
    est = estimate_ipc(mdfg, schedule.binding(), adg, params)
    return VariantVerdict(
        variant=mdfg.variant,
        mapped=True,
        projected_ipc=est.ipc,
        insts_per_cycle=mdfg.insts_per_cycle,
    )


def advise(
    workload: Workload,
    adg: ADG,
    params: SystemParams,
    variants: Optional[VariantSet] = None,
) -> MappingAdvice:
    """Try every variant of ``workload`` on the overlay and report.

    The potential gain compares the instruction bandwidth of the most
    aggressive *unmappable* variant against the best variant that mapped —
    the headroom a re-specialized overlay could unlock.
    """
    variants = variants or generate_variants(workload)
    verdicts = [
        _try_variant(mdfg, adg, params) for mdfg in variants.variants
    ]
    mapped = [v for v in verdicts if v.mapped]
    best_mapped = max(mapped, key=lambda v: v.projected_ipc, default=None)
    unmapped = [v for v in verdicts if not v.mapped]
    if best_mapped is None:
        gain = float("inf") if unmapped else 0.0
    elif unmapped:
        best_unmapped_ipc = max(v.projected_ipc for v in unmapped)
        gain = max(1.0, best_unmapped_ipc / max(1e-9, best_mapped.projected_ipc))
    else:
        gain = 1.0
    return MappingAdvice(
        workload=workload.name,
        verdicts=verdicts,
        best_mapped=best_mapped,
        potential_gain=gain,
        recommend_redse=(
            best_mapped is None or gain >= REDSE_GAIN_THRESHOLD
        ),
    )
