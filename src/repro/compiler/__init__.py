"""The decoupled-spatial compiler (Sections II-B, IV-B, V-A).

Public entry points:

* :func:`compile_workload` — lower one workload at a fixed setting.
* :func:`generate_variants` — pre-compile the variant family used by DSE.
* :func:`analyze_workload` — standalone reuse analysis.
"""

from .lowering import (
    LoweringError,
    MAX_VECTOR_BITS,
    SPAD_REUSE_THRESHOLD,
    lower,
    max_unroll,
    tile_parallelism,
)
from .reuse import (
    AccessInfo,
    RecurrenceInfo,
    WorkloadReuse,
    access_traffic,
    affine_span,
    analyze_access,
    analyze_workload,
    find_recurrence,
    stationary_factor,
)
from .variants import (
    VariantSet,
    generate_variants,
    unroll_candidates,
    uses_recurrence_engine,
)

# Advisor imports the scheduler (which imports this package); importing it
# last keeps the circular import resolvable.
from .advisor import (  # noqa: E402  (deliberate late import)
    MappingAdvice,
    REDSE_GAIN_THRESHOLD,
    VariantVerdict,
    advise,
)

compile_workload = lower

__all__ = [
    "AccessInfo",
    "MappingAdvice",
    "REDSE_GAIN_THRESHOLD",
    "VariantVerdict",
    "advise",
    "LoweringError",
    "MAX_VECTOR_BITS",
    "RecurrenceInfo",
    "SPAD_REUSE_THRESHOLD",
    "VariantSet",
    "WorkloadReuse",
    "access_traffic",
    "affine_span",
    "analyze_access",
    "analyze_workload",
    "compile_workload",
    "find_recurrence",
    "generate_variants",
    "lower",
    "max_unroll",
    "stationary_factor",
    "tile_parallelism",
    "unroll_candidates",
    "uses_recurrence_engine",
]
