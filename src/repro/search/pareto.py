"""Multi-objective frontier math: dominance, sorting, hypervolume.

Pure functions over plain numeric vectors so the property-based tests can
hammer them without any DSE machinery.  Every routine is deterministic:
ties break by point value, returned indices are sorted, and the default
hypervolume reference point is derived from the data by a fixed rule
(worst value per axis plus/minus one), never from wall-clock or RNG.

Axis *senses* say which direction is better: the DSE objective is
maximized, resource axes (LUT/FF/BRAM/DSP) are minimized — the same
perf-vs-area trade-off the paper sweeps in Fig. 14-16.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

#: Sense tokens accepted by :func:`parse_axis`.
SENSES = ("max", "min")


@dataclass(frozen=True)
class Axis:
    """One objective axis: a trial attribute name plus its sense."""

    name: str
    sense: str  # "max" | "min"

    def __post_init__(self) -> None:
        if self.sense not in SENSES:
            raise ValueError(f"axis sense must be max|min, got {self.sense!r}")

    def __str__(self) -> str:
        return f"{self.name}:{self.sense}"


#: The default study axes: modeled performance against the FPGA resource
#: vector (Fig. 14-16's sweep, generalized to every resource class).
DEFAULT_AXES: Tuple[Axis, ...] = (
    Axis("objective", "max"),
    Axis("lut", "min"),
    Axis("dsp", "min"),
    Axis("bram", "min"),
)


def parse_axis(spec: str) -> Axis:
    """Parse ``"name:sense"`` (sense defaults to ``min``)."""
    name, sep, sense = spec.partition(":")
    if not name:
        raise ValueError(f"empty axis name in {spec!r}")
    return Axis(name, sense if sep else "min")


def _gain(value: float, sense: str) -> float:
    """Map a value to 'bigger is better' space."""
    return value if sense == "max" else -value


def dominates(
    a: Sequence[float], b: Sequence[float], senses: Sequence[str]
) -> bool:
    """True iff ``a`` is at least as good as ``b`` on every axis and
    strictly better on at least one."""
    if len(a) != len(b) or len(a) != len(senses):
        raise ValueError("point/sense dimension mismatch")
    better = False
    for x, y, sense in zip(a, b, senses):
        gx, gy = _gain(x, sense), _gain(y, sense)
        if gx < gy:
            return False
        if gx > gy:
            better = True
    return better


def non_dominated(
    points: Sequence[Sequence[float]], senses: Sequence[str]
) -> List[int]:
    """Sorted indices of the points no other point dominates.

    Duplicates of a frontier point are all kept (neither dominates the
    other), so the frontier's *value set* is invariant under duplication
    and under any permutation of the input.
    """
    keep: List[int] = []
    for i, p in enumerate(points):
        if not any(
            dominates(q, p, senses) for j, q in enumerate(points) if j != i
        ):
            keep.append(i)
    return keep


def non_dominated_sort(
    points: Sequence[Sequence[float]], senses: Sequence[str]
) -> List[List[int]]:
    """Peel successive non-dominated layers; concatenation covers all points."""
    remaining = list(range(len(points)))
    layers: List[List[int]] = []
    while remaining:
        subset = [points[i] for i in remaining]
        front_local = non_dominated(subset, senses)
        front = sorted(remaining[i] for i in front_local)
        layers.append(front)
        taken = set(front)
        remaining = [i for i in remaining if i not in taken]
    return layers


def default_reference(
    points: Sequence[Sequence[float]], senses: Sequence[str]
) -> List[float]:
    """Deterministic 'worst corner' just beyond the data: one unit worse
    than the worst observed value on each axis."""
    if not points:
        return [0.0] * len(senses)
    ref = []
    for k, sense in enumerate(senses):
        values = [p[k] for p in points]
        ref.append(min(values) - 1.0 if sense == "max" else max(values) + 1.0)
    return ref


def hypervolume(
    points: Sequence[Sequence[float]],
    senses: Sequence[str],
    reference: Optional[Sequence[float]] = None,
) -> float:
    """Volume dominated by ``points`` relative to ``reference``.

    Computed by recursive slicing on the last axis (exact, exponential in
    dimension — fine for the 2-4 axis frontiers we report).  Adding a
    dominated point never changes the result; adding a non-dominated point
    inside the reference box never decreases it.
    """
    if not points:
        return 0.0
    if reference is None:
        reference = default_reference(points, senses)
    if len(reference) != len(senses):
        raise ValueError("reference/sense dimension mismatch")
    gains = []
    for p in points:
        g = tuple(
            _gain(v, sense) - _gain(r, sense)
            for v, r, sense in zip(p, reference, senses)
        )
        if all(x > 0 for x in g):
            gains.append(g)
    return _box_union_volume(gains, len(senses))


def _box_union_volume(gains: Sequence[Tuple[float, ...]], k: int) -> float:
    """Volume of the union of boxes ``[0, g]`` for each gain vector."""
    if not gains:
        return 0.0
    if k == 1:
        return max(g[0] for g in gains)
    levels = sorted({g[k - 1] for g in gains})
    volume = 0.0
    prev = 0.0
    for z in levels:
        live = [g[: k - 1] for g in gains if g[k - 1] >= z]
        volume += (z - prev) * _box_union_volume(live, k - 1)
        prev = z
    return volume
