"""The legacy annealer re-based onto the strategy protocol.

This is *the same loop* as :meth:`repro.dse.Explorer.run`, cut at the
evaluation boundary: ``ask(1)`` runs the propose/upgrade half of one
iteration, the runner evaluates the candidate's nested system sweep
(possibly in a worker process), and ``tell`` replays the accept/reject
half.  RNG draws, stats, modeled-seconds charges and trajectory bookings
happen in exactly the legacy order, so :meth:`finish` returns a
``DseResult`` byte-identical to the legacy path for the same seed and
config — the golden test pickles both and compares bytes.

Annealing is inherently sequential (each proposal mutates the last
accepted design), so ``max_batch = 1``; batching still pays off for the
population strategies sharing the runner.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from ..adg import ADG, SysADG, adg_to_dict
from ..compiler import generate_variants
from ..dse.explorer import DseResult, Explorer, ExplorerState
from ..profile.tracer import add_counter, span
from .strategy import Proposal, SearchContext, SearchError, Strategy, register
from .study import Trial


@register
class AnnealStrategy(Strategy):
    """Simulated annealing as a batch-1 ask/tell strategy."""

    name = "anneal"
    max_batch = 1

    def __init__(self, ctx: SearchContext, state: Any = None) -> None:
        super().__init__(ctx)
        from dataclasses import replace

        config = replace(ctx.config, seed=ctx.seed)
        self.explorer = Explorer(ctx.workloads, config, name=ctx.name)
        self.variant_sets = {
            w.name: generate_variants(w) for w in ctx.workloads
        }
        self.pending: Optional[Tuple[int, ADG, dict]] = None
        if state is not None:
            self._restore_state(state)
            return
        # Pre-loop, verbatim from Explorer.run(): charge the full compile,
        # schedule the seed ADG, sweep the system grid, book iteration 0.
        ex = self.explorer
        cfg = ex.config
        ex.modeled_seconds += cfg.time_model.full_compile * len(ex.workloads)
        adg = ex._initial_adg()
        schedules = ex._schedule_all(self.variant_sets, adg)
        if schedules is None:
            raise SearchError("seed ADG cannot schedule all workloads")
        choice = ex._system_dse(adg, schedules)
        if choice is None:
            raise SearchError("seed ADG does not fit the FPGA")
        self.best = (adg, schedules, choice)
        ex._record_accept(0, choice)
        self.iteration = 0

    @classmethod
    def create(cls, ctx: SearchContext, state: Any = None) -> "AnnealStrategy":
        return cls(ctx, state)

    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        return (
            self.iteration >= self.explorer.config.iterations
            and self.pending is None
        )

    def ask(self, n: int) -> List[Proposal]:
        if self.pending is not None:
            raise SearchError("anneal: previous proposal not yet told")
        ex = self.explorer
        cfg = ex.config
        while self.iteration < cfg.iterations:
            iteration = self.iteration + 1
            self.iteration = iteration
            ex.stats.iterations = iteration
            add_counter("dse.candidates")
            with span("dse.propose", iteration=iteration):
                candidate = ex._propose(self.best[0], self.best[1])
            if candidate is None:
                continue
            cand_adg, cand_schedules = candidate
            if iteration % cfg.upgrade_every == 0:
                with span("dse.upgrade", iteration=iteration):
                    cand_schedules = ex._upgrade_variants(
                        self.variant_sets, cand_adg, cand_schedules
                    )
            self.pending = (iteration, cand_adg, cand_schedules)
            payload = {
                "adg_doc": adg_to_dict(cand_adg),
                "adg_next_id": cand_adg._next_id,
                "adg_version": cand_adg.version,
                "schedules": cand_schedules,
            }
            return [
                Proposal(
                    kind="candidate",
                    payload=payload,
                    lineage={"iteration": iteration},
                )
            ]
        return []

    def tell(self, trials: Sequence[Trial]) -> None:
        if self.pending is None:
            if trials:
                raise SearchError("anneal: tell without a pending proposal")
            return
        if len(trials) != 1:
            raise SearchError(f"anneal: expected 1 trial, got {len(trials)}")
        iteration, cand_adg, cand_schedules = self.pending
        self.pending = None
        ex = self.explorer
        # The modeled charge _system_dse would have made in-process.
        ex.modeled_seconds += ex.config.time_model.model_eval * 60
        choice = trials[0].choice
        if choice is None:
            ex.stats.rejected_unschedulable += 1
            add_counter("dse.rejected")
            return
        if ex._accept(choice, self.best[2], iteration):
            self.best = (cand_adg, cand_schedules, choice)
            ex.stats.accepted += 1
            add_counter("dse.accepted")
            ex._record_accept(iteration, choice)
        else:
            ex.stats.rejected_annealing += 1
            add_counter("dse.rejected")

    # ------------------------------------------------------------------
    def snapshot(self) -> ExplorerState:
        if self.pending is not None:
            raise SearchError("anneal: cannot snapshot mid-proposal")
        return self.explorer.snapshot(self.iteration, self.best)

    def restore(self, state: ExplorerState) -> None:
        self._restore_state(state)

    def _restore_state(self, state: ExplorerState) -> None:
        self.best = self.explorer._restore(state)
        self.iteration = state.iteration
        self.pending = None

    def finish(self) -> DseResult:
        """The legacy post-loop polish, verbatim — yields the DseResult."""
        ex = self.explorer
        adg, schedules, choice = self.best
        schedules = ex._upgrade_variants(self.variant_sets, adg, schedules)
        choice = ex._system_dse(adg, schedules) or choice
        ex._pad_for_generality(adg, choice)
        schedules = ex._upgrade_variants(self.variant_sets, adg, schedules)
        choice = ex._system_dse(adg, schedules) or choice
        ex.modeled_seconds += ex.config.time_model.synthesis_hours * 3600.0
        sysadg = SysADG(adg=adg, params=choice.params, name=ex.name)
        return DseResult(
            sysadg=sysadg,
            schedules=schedules,
            choice=choice,
            history=ex.history,
            stats=ex.stats,
            variant_sets=self.variant_sets,
            modeled_seconds=ex.modeled_seconds,
            points=ex.points,
        )
