"""The study runner: ask -> evaluate (via repro.jobs) -> tell -> persist.

One loop drives every strategy.  Proposals fan out through a
:class:`~repro.jobs.ShardPlan` and :class:`~repro.jobs.JobRunner` — zero
new executor code — and results are re-assembled in global index order
and normalized through one pickle round-trip, so a ``--workers 4`` run
produces a study byte-identical to ``--workers 1``.  After every batch
the study plus the strategy snapshot are persisted to the engine store;
re-running the same (workloads, config, strategy, seed, batch) resumes
from disk and the finished study is bit-identical to an uninterrupted
run.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

from ..adg import SysADG, adg_from_dict
from ..dse import DseConfig, DseResult
from ..dse.system import SystemChoice
from ..engine.hashing import config_fingerprint
from ..engine.metrics import MetricsLogger
from ..ir import Workload
from ..jobs import FaultPolicy, JobRunner, ProcessPoolJobExecutor, ShardPlan
from ..profile.tracer import span
from .anneal import AnnealStrategy
from .evaluate import EvalOut, EvalShard, evaluate_proposal, evaluate_shard
from .strategy import (
    Proposal,
    SearchContext,
    SearchError,
    make_strategy,
    strategy_names,
)
from .study import Study, Trial, load_study, save_study, study_key


@dataclass
class SearchSettings:
    """How to run one study."""

    strategy: str = "anneal"
    trials: int = 16
    batch: int = 1
    seed: int = 0
    workers: int = 1


@dataclass
class SearchOutcome:
    """What one search run produced."""

    study: Study
    key: str
    resumed: bool = False
    #: Populated by the anneal strategy only (its legacy-identical result).
    dse_result: Optional[DseResult] = None
    best_trial: Optional[Trial] = None
    sysadg: Optional[SysADG] = None
    choice: Optional[SystemChoice] = None


def run_search(
    workloads: Sequence[Workload],
    config: Optional[DseConfig] = None,
    settings: Optional[SearchSettings] = None,
    *,
    store: Any = None,
    metrics: Optional[MetricsLogger] = None,
    resume: bool = True,
    rebuild_best: bool = False,
    name: str = "overlay",
) -> SearchOutcome:
    """Run (or resume) one study to its trial budget."""
    if not workloads:
        raise SearchError("need at least one workload")
    config = config or DseConfig()
    settings = settings or SearchSettings()
    if settings.strategy not in strategy_names():
        raise SearchError(
            f"unknown strategy {settings.strategy!r}; available: "
            + ", ".join(strategy_names())
        )
    metrics = metrics if metrics is not None else MetricsLogger()
    key = study_key(
        workloads, config, settings.strategy, settings.seed, settings.batch
    )
    ctx = SearchContext(
        workloads=list(workloads),
        config=config,
        seed=settings.seed,
        name=name,
    )
    study: Optional[Study] = None
    state: Any = None
    resumed = False
    if store is not None and resume:
        study, state = load_study(store, key)
        resumed = study is not None
    if study is None:
        study = Study(
            key=key,
            strategy=settings.strategy,
            seed=settings.seed,
            batch=settings.batch,
            workloads=[w.name for w in workloads],
            config_fingerprint=config_fingerprint(config),
        )

    with span("search.run", strategy=settings.strategy, key=key):
        strategy = make_strategy(settings.strategy, ctx, state=state)
        metrics.emit(
            "study_start",
            key=key,
            strategy=settings.strategy,
            seed=settings.seed,
            batch=settings.batch,
            trials_target=settings.trials,
            existing=len(study.trials),
            resumed=resumed,
        )
        while len(study.trials) < settings.trials and not strategy.exhausted:
            want = min(
                settings.batch,
                strategy.max_batch,
                settings.trials - len(study.trials),
            )
            with span("search.ask", want=want):
                proposals = strategy.ask(want)
            if not proposals:
                break
            evals = _evaluate(
                proposals,
                ctx,
                settings.workers,
                metrics,
                start_index=len(study.trials),
            )
            trials = _to_trials(proposals, evals, settings)
            with span("search.tell", trials=len(trials)):
                strategy.tell(trials)
            study.trials.extend(t.stripped() for t in trials)
            metrics.emit(
                "study_batch",
                key=key,
                strategy=settings.strategy,
                asked=want,
                evaluated=len(trials),
                feasible=sum(1 for t in trials if t.feasible),
                total=len(study.trials),
            )
            if store is not None:
                save_study(store, study, strategy.snapshot())

        outcome = SearchOutcome(study=study, key=key, resumed=resumed)
        outcome.best_trial = study.best_trial()
        if isinstance(strategy, AnnealStrategy) and strategy.exhausted:
            outcome.dse_result = strategy.finish()
            outcome.sysadg = outcome.dse_result.sysadg
            outcome.choice = outcome.dse_result.choice
        elif rebuild_best and outcome.best_trial is not None:
            outcome.sysadg, outcome.choice = _rebuild_best(
                outcome.best_trial, ctx
            )
        best = outcome.best_trial
        metrics.emit(
            "study_end",
            key=key,
            strategy=settings.strategy,
            trials=len(study.trials),
            feasible=len(study.feasible_trials()),
            best_objective=best.objective if best else None,
            best_index=best.index if best else None,
        )
    return outcome


# ----------------------------------------------------------------------
def _evaluate(
    proposals: Sequence[Proposal],
    ctx: SearchContext,
    workers: int,
    metrics: MetricsLogger,
    start_index: int,
) -> List[EvalOut]:
    """Fan a batch out through the jobs runtime; index order in, index
    order out, pickle-normalized so serial == pool byte-for-byte."""
    indexed = [(start_index + i, p) for i, p in enumerate(proposals)]
    plan = ShardPlan(total=len(indexed), shards=max(1, int(workers)))
    shards = [list(s) for s in plan.scatter(indexed) if s]
    jobs = [
        EvalShard(
            items=shard,
            workloads=tuple(ctx.workloads),
            config=ctx.config,
            seed=ctx.seed,
        )
        for shard in shards
    ]
    runner = JobRunner(
        executor=ProcessPoolJobExecutor(max(1, int(workers))),
        policy=FaultPolicy(mode="fail"),
        metrics=metrics,
        name="search.eval",
    )
    with span("search.eval", proposals=len(indexed)):
        outcomes = runner.run(
            evaluate_shard,
            jobs,
            label_fn=lambda job: job.items[0][0] if job.items else -1,
        )
    outs: List[EvalOut] = [
        out for outcome in outcomes for out in outcome.result
    ]
    # The Checkpointing idiom, applied per item: a round-trip of the whole
    # list would *preserve* cross-item object sharing, which differs
    # between serial (shared strings/tuples) and pool (per-shard pickles)
    # runs and leaks into the persisted study's bytes.  Round-tripping
    # each EvalOut alone breaks cross-item sharing identically for every
    # shard layout.
    outs = [pickle.loads(pickle.dumps(out)) for out in outs]
    outs.sort(key=lambda e: e.index)
    return outs


def _to_trials(
    proposals: Sequence[Proposal],
    evals: Sequence[EvalOut],
    settings: SearchSettings,
) -> List[Trial]:
    if len(proposals) != len(evals):
        raise SearchError(
            f"evaluated {len(evals)} of {len(proposals)} proposals"
        )
    trials = []
    for proposal, ev in zip(proposals, evals):
        trials.append(
            Trial(
                index=ev.index,
                strategy=settings.strategy,
                kind=proposal.kind,
                lineage=proposal.lineage,
                seed=settings.seed,
                feasible=ev.feasible,
                objective=ev.objective,
                modeled_seconds=ev.modeled_seconds,
                lut=ev.lut,
                ff=ev.ff,
                bram=ev.bram,
                dsp=ev.dsp,
                bottleneck=ev.bottleneck,
                choice=ev.choice,
            )
        )
    return trials


def _rebuild_best(trial: Trial, ctx: SearchContext):
    """Re-evaluate the winning trial in-process to realize its SysADG."""
    if trial.kind == "genome":
        proposal = Proposal(
            kind="genome",
            payload={"genes": [list(g) for g in trial.lineage["genes"]]},
            lineage=trial.lineage,
        )
    elif trial.kind == "params":
        proposal = Proposal(
            kind="params",
            payload={"params": dict(trial.lineage["params"])},
            lineage=trial.lineage,
        )
    else:
        return None, None
    shard = EvalShard(
        items=[],
        workloads=tuple(ctx.workloads),
        config=ctx.config,
        seed=ctx.seed,
        include_adg=True,
    )
    out = evaluate_proposal(trial.index, proposal, shard)
    if out.choice is None or out.adg_doc is None:
        return None, None
    adg = adg_from_dict(out.adg_doc)
    return (
        SysADG(adg=adg, params=out.choice.params, name=ctx.name),
        out.choice,
    )
