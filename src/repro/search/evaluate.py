"""Proposal evaluation — the worker-side half of the search runtime.

:func:`evaluate_shard` is a module-level function so it pickles cleanly
into :class:`~repro.jobs.ProcessPoolJobExecutor` workers.  Evaluation is
pure and deterministic: everything it needs travels in the
:class:`EvalShard`, and its modeled-seconds accounting is a fixed formula
of the work performed — never wall-clock — so serial and pool runs score
every proposal identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..adg import SystemParams, adg_from_dict
from ..compiler import generate_variants
from ..dse import DseConfig
from ..dse.system import SystemChoice, system_dse
from ..ir import Workload
from ..model.resource import AnalyticEstimator, usable_budget
from .space import genome_adg, params_adg
from .strategy import Proposal


@dataclass
class EvalShard:
    """One worker's slice of a proposal batch (global indices attached)."""

    items: List[Tuple[int, Proposal]]
    workloads: Tuple[Workload, ...]
    config: DseConfig
    seed: int
    include_adg: bool = False


@dataclass
class EvalOut:
    """The scored outcome of one proposal."""

    index: int
    feasible: bool
    objective: Optional[float]
    modeled_seconds: float
    lut: float = 0.0
    ff: float = 0.0
    bram: float = 0.0
    dsp: float = 0.0
    bottleneck: str = ""
    choice: Optional[SystemChoice] = None
    adg_doc: Optional[Dict[str, Any]] = None


def evaluate_shard(shard: EvalShard) -> List[EvalOut]:
    """Evaluate every proposal in the shard, in global index order."""
    return [
        evaluate_proposal(index, proposal, shard)
        for index, proposal in shard.items
    ]


def evaluate_proposal(
    index: int, proposal: Proposal, shard: EvalShard
) -> EvalOut:
    cfg = shard.config
    estimator = AnalyticEstimator()
    budget = usable_budget() * (1.0 - cfg.generality_reserve)

    if proposal.kind == "candidate":
        # The annealer already built and repaired the schedules; this is
        # exactly the nested system sweep the legacy loop runs in-process
        # (the strategy charges the modeled model_eval cost itself).
        adg = adg_from_dict(proposal.payload["adg_doc"])
        adg.restore_counters(
            proposal.payload["adg_next_id"], proposal.payload["adg_version"]
        )
        schedules = proposal.payload["schedules"]
        choice = system_dse(
            adg,
            list(schedules.values()),
            estimator=estimator,
            budget=budget,
            max_tiles=cfg.max_tiles,
        )
        return _out(index, choice, modeled_seconds=0.0)

    if proposal.kind not in ("genome", "params"):
        raise ValueError(f"unknown proposal kind {proposal.kind!r}")

    if proposal.kind == "genome":
        adg = genome_adg(
            shard.workloads,
            [tuple(g) for g in proposal.payload["genes"]],
            shard.seed,
            width_bits=cfg.seed_width_bits,
        )
    else:
        adg = params_adg(
            shard.workloads,
            proposal.payload["params"],
            width_bits=cfg.seed_width_bits,
        )

    params = SystemParams()
    schedules = {}
    total_variants = 0
    choice: Optional[SystemChoice] = None
    feasible = True
    try:
        from ..scheduler import schedule_workload

        for workload in shard.workloads:
            variants = generate_variants(workload)
            total_variants += len(variants.variants)
            schedule = schedule_workload(variants, adg, params)
            if schedule is None:
                feasible = False
                break
            schedules[workload.name] = schedule
        if feasible:
            choice = system_dse(
                adg,
                list(schedules.values()),
                estimator=estimator,
                budget=budget,
                max_tiles=cfg.max_tiles,
            )
    except Exception:
        # A mutated design the toolchain rejects outright is just an
        # infeasible point — the strategy learns from it like any other.
        choice = None
    # Fixed-formula modeled cost (a real toolchain would schedule every
    # variant from scratch, then sweep the system grid).
    modeled = (
        cfg.time_model.full_schedule * total_variants
        + cfg.time_model.model_eval * 60.0
    )
    out = _out(index, choice, modeled_seconds=modeled)
    if shard.include_adg and choice is not None:
        from ..adg import adg_to_dict

        out.adg_doc = adg_to_dict(adg)
    return out


def _out(
    index: int, choice: Optional[SystemChoice], modeled_seconds: float
) -> EvalOut:
    if choice is None:
        return EvalOut(
            index=index,
            feasible=False,
            objective=None,
            modeled_seconds=modeled_seconds,
        )
    total = choice.system_total
    return EvalOut(
        index=index,
        feasible=True,
        objective=choice.objective,
        modeled_seconds=modeled_seconds,
        lut=total.lut,
        ff=total.ff,
        bram=total.bram,
        dsp=total.dsp,
        bottleneck=dominant_bottleneck(choice),
        choice=choice,
    )


def dominant_bottleneck(choice: SystemChoice) -> str:
    """The bottleneck class of the slowest workload (the binding one)."""
    if not choice.estimates:
        return "none"
    worst = min(
        choice.estimates, key=lambda name: (choice.estimates[name].ipc, name)
    )
    return choice.estimates[worst].bottleneck
