"""A dependency-free tree-structured Parzen estimator.

Optimizes over the discrete :data:`~repro.search.space.PARAM_SPACE` grid
(fabric growth plus width/capacity/bandwidth ladders).  After a random
startup phase, observations split at the gamma-quantile into *good* and
*bad* sets; each dimension gets smoothed categorical densities ``l(x)``
(good) and ``g(x)`` (bad) with a +1 prior, candidates are sampled from
``l`` and ranked by the expected-improvement proxy ``sum(log l/g)``.
Infeasible points score worst, steering density away from configurations
the scheduler rejects.  All sampling flows from one crc32-stable RNG.
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .space import PARAM_SPACE, param_space_size, params_key
from .strategy import Proposal, SearchContext, Strategy, register, stable_rng
from .study import Trial

_INFEASIBLE = float("-inf")


@register
class TpeStrategy(Strategy):
    """Tree-structured Parzen estimator over the parameter grid."""

    name = "tpe"
    n_startup = 8
    gamma = 0.25
    n_candidates = 24

    def __init__(self, ctx: SearchContext) -> None:
        super().__init__(ctx)
        self.rng = stable_rng(ctx.seed, "search", self.name)
        self.observed: List[Tuple[Tuple[Any, ...], float]] = []
        # Insertion-ordered dict, not a set: the snapshot is pickled into
        # the study artifact, and set iteration order varies with the
        # per-process string hash seed while dict order does not.
        self.issued: Dict[Tuple[Any, ...], bool] = {}
        self.inflight = 0
        self._space_exhausted = False

    @property
    def exhausted(self) -> bool:
        return self._space_exhausted

    # ------------------------------------------------------------------
    def ask(self, n: int) -> List[Proposal]:
        proposals = []
        for _ in range(max(0, n)):
            params = self._sample()
            if params is None:
                self._space_exhausted = True
                break
            self.issued[params_key(params)] = True
            proposals.append(
                Proposal(
                    kind="params",
                    payload={"params": params},
                    lineage={"params": params},
                )
            )
        self.inflight += len(proposals)
        return proposals

    def tell(self, trials: Sequence[Trial]) -> None:
        for trial in trials:
            key = params_key(trial.lineage["params"])
            score = (
                trial.objective
                if trial.feasible and trial.objective is not None
                else _INFEASIBLE
            )
            self.observed.append((key, score))
        self.inflight -= len(trials)

    # ------------------------------------------------------------------
    def _sample(self) -> Optional[Dict[str, Any]]:
        if len(self.issued) >= param_space_size():
            return None
        if len(self.issued) < self.n_startup:
            return self._random_unseen()
        return self._tpe_sample()

    def _random_unseen(self) -> Optional[Dict[str, Any]]:
        for _ in range(200):
            params = {
                name: self.rng.choice(choices)
                for name, choices in PARAM_SPACE
            }
            if params_key(params) not in self.issued:
                return params
        # Dense region: deterministic scan for the first unseen grid point.
        for values in itertools.product(
            *(choices for _, choices in PARAM_SPACE)
        ):
            if values not in self.issued:
                return {
                    name: value
                    for (name, _), value in zip(PARAM_SPACE, values)
                }
        return None

    def _tpe_sample(self) -> Optional[Dict[str, Any]]:
        ranked = sorted(self.observed, key=lambda ob: (-ob[1], ob[0]))
        n_good = max(1, int(self.gamma * len(ranked)))
        good = [key for key, _ in ranked[:n_good]]
        bad = [key for key, _ in ranked[n_good:]] or good
        l_weights = self._densities(good)
        g_weights = self._densities(bad)
        best: Optional[Tuple[float, Tuple[Any, ...]]] = None
        for _ in range(self.n_candidates):
            values = tuple(
                self.rng.choices(choices, weights=l_weights[dim])[0]
                for dim, (_, choices) in enumerate(PARAM_SPACE)
            )
            if values in self.issued:
                continue
            score = 0.0
            for dim, (_, choices) in enumerate(PARAM_SPACE):
                slot = choices.index(values[dim])
                score += math.log(
                    l_weights[dim][slot] / g_weights[dim][slot]
                )
            # Deterministic tie-break on the value tuple itself.
            if best is None or (score, values) > best:
                best = (score, values)
        if best is None:
            return self._random_unseen()
        return {
            name: value
            for (name, _), value in zip(PARAM_SPACE, best[1])
        }

    def _densities(
        self, keys: Sequence[Tuple[Any, ...]]
    ) -> List[List[float]]:
        """Per-dimension smoothed categorical weights (+1 prior)."""
        weights: List[List[float]] = []
        for dim, (_, choices) in enumerate(PARAM_SPACE):
            counts = [1.0] * len(choices)
            for key in keys:
                counts[choices.index(key[dim])] += 1.0
            total = sum(counts)
            weights.append([c / total for c in counts])
        return weights
