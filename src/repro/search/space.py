"""Shared design spaces for the genome and parameter strategies.

A *genome* is a sequence of ``(transform_name, salt)`` genes.  Applying a
gene draws its randomness from ``stable_rng(study_seed, "gene", op, salt)``
— never from a shared stream — so a genome evaluates identically no
matter which worker process replays it, in any order, under any
PYTHONHASHSEED.  Inapplicable genes (the transform raises) are skipped,
mirroring how the annealer retries inapplicable moves.

The *parameter space* is the discrete grid the TPE strategy searches:
fabric growth knobs plus the width/capacity/bandwidth ladders the random
transforms draw from.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Sequence, Tuple

from ..adg import ADG, AdgError, seed_for_workloads
from ..dse.transforms import (
    BANDWIDTHS,
    PE_WIDTHS,
    PORT_WIDTHS,
    RANDOM_TRANSFORMS,
    SPAD_CAPACITIES,
    TransformFailed,
)
from ..ir import Workload
from .strategy import stable_rng

#: One gene: (random-transform name, salt for its private RNG stream).
Gene = Tuple[str, int]

TRANSFORM_BY_NAME = {fn.__name__: fn for fn in RANDOM_TRANSFORMS}
TRANSFORM_NAMES: Tuple[str, ...] = tuple(
    fn.__name__ for fn in RANDOM_TRANSFORMS
)


def apply_genome(
    adg: ADG, genes: Sequence[Gene], study_seed: int
) -> List[List[Any]]:
    """Apply a genome in order; returns the genes that actually applied."""
    applied: List[List[Any]] = []
    for op, salt in genes:
        fn = TRANSFORM_BY_NAME.get(op)
        if fn is None:
            continue
        rng = stable_rng(study_seed, "gene", op, str(int(salt)))
        try:
            fn(adg, rng)
        except (TransformFailed, AdgError):
            continue
        applied.append([op, int(salt)])
    return applied


def genome_adg(
    workloads: Sequence[Workload],
    genes: Sequence[Gene],
    study_seed: int,
    width_bits: int = 512,
) -> ADG:
    """The seed ADG for ``workloads`` with ``genes`` applied."""
    adg = seed_for_workloads(list(workloads), width_bits=width_bits)
    apply_genome(adg, genes, study_seed)
    return adg


# ----------------------------------------------------------------------
# TPE parameter space
# ----------------------------------------------------------------------
#: (name, ordered choices) — order is part of the schema (stable sampling).
PARAM_SPACE: Tuple[Tuple[str, Tuple[Any, ...]], ...] = (
    ("extra_pes", (0, 1, 2, 3)),
    ("extra_switches", (0, 1, 2)),
    ("pe_width", PE_WIDTHS),
    ("port_width", PORT_WIDTHS),
    ("spad_capacity", SPAD_CAPACITIES),
    ("engine_bandwidth", BANDWIDTHS),
)


def param_space_size() -> int:
    size = 1
    for _, choices in PARAM_SPACE:
        size *= len(choices)
    return size


def params_key(params: Dict[str, Any]) -> Tuple[Any, ...]:
    """Canonical tuple form of a parameter point (dimension order)."""
    return tuple(params[name] for name, _ in PARAM_SPACE)


def params_adg(
    workloads: Sequence[Workload],
    params: Dict[str, Any],
    width_bits: int = 512,
) -> ADG:
    """Deterministically realize a parameter point as a concrete ADG.

    Structure first (extra switches into the ring, extra PEs cloned from
    the richest donor), then uniform re-sizing of widths, capacities and
    bandwidths.  Points that break schedulability simply score as
    infeasible trials — that is the search learning the constraint.
    """
    adg = seed_for_workloads(list(workloads), width_bits=width_bits)
    switches = sorted(adg.switches, key=lambda s: s.node_id)
    for i in range(int(params.get("extra_switches", 0))):
        width = max((s.width_bits for s in switches), default=64)
        new = adg.add_switch(width_bits=width)
        if switches:
            a = switches[i % len(switches)]
            b = switches[(i + 1) % len(switches)]
            adg.add_link(a.node_id, new)
            adg.add_link(new, b.node_id)
        switches = sorted(adg.switches, key=lambda s: s.node_id)
    for i in range(int(params.get("extra_pes", 0))):
        pes = adg.pes
        if not pes or not switches:
            break
        donor = max(pes, key=lambda p: (len(p.caps), p.node_id))
        pe_id = adg.add_pe(caps=donor.caps, width_bits=donor.width_bits)
        sw = switches[i % len(switches)]
        adg.add_link(sw.node_id, pe_id)
        adg.add_link(pe_id, sw.node_id)
    pe_width = int(params.get("pe_width", 0))
    if pe_width:
        for pe in list(adg.pes):
            if pe.width_bits != pe_width:
                adg.replace_node(pe.node_id, width_bits=pe_width)
    port_width = int(params.get("port_width", 0))
    if port_width:
        for port in list(adg.in_ports) + list(adg.out_ports):
            if port.width_bytes != port_width:
                adg.replace_node(port.node_id, width_bytes=port_width)
    spad_capacity = int(params.get("spad_capacity", 0))
    bandwidth = int(params.get("engine_bandwidth", 0))
    for spad in list(adg.spads):
        if spad_capacity and spad.capacity_bytes != spad_capacity:
            adg.replace_node(spad.node_id, capacity_bytes=spad_capacity)
        if bandwidth and spad.read_bandwidth != bandwidth:
            adg.replace_node(
                spad.node_id,
                read_bandwidth=bandwidth,
                write_bandwidth=bandwidth,
            )
    if bandwidth:
        for dma in list(adg.dmas):
            if dma.bandwidth_bytes != bandwidth:
                adg.replace_node(dma.node_id, bandwidth_bytes=bandwidth)
    return adg
