"""Self-contained HTML report for a study: frontier scatter + trial table.

Pure string templating over the deterministic frontier document — no
external assets, no JavaScript dependencies, no timestamps — so the same
study always renders byte-identical HTML (the CI search-smoke job relies
on that).
"""

from __future__ import annotations

import html
from typing import List, Sequence

from .pareto import DEFAULT_AXES, Axis
from .study import Study, frontier_doc

_STYLE = """
body { font-family: ui-monospace, Menlo, Consolas, monospace;
       margin: 2rem; color: #222; }
h1 { font-size: 1.2rem; } h2 { font-size: 1rem; }
table { border-collapse: collapse; font-size: 0.8rem; }
th, td { border: 1px solid #ccc; padding: 2px 8px; text-align: right; }
th { background: #f0f0f0; }
td.l, th.l { text-align: left; }
tr.front { background: #e8f4e8; }
.meta { color: #666; font-size: 0.85rem; }
svg { border: 1px solid #ccc; background: #fdfdfd; }
"""


def render_html(
    study: Study, axes: Sequence[Axis] = DEFAULT_AXES
) -> str:
    """The full report: metadata, SVG scatter, and the trial table."""
    frontier = frontier_doc(study, axes)
    front_indices = {p["trial"] for p in frontier["points"]}
    x_axis = next((a for a in axes if a.sense == "min"), axes[-1])
    y_axis = next((a for a in axes if a.sense == "max"), axes[0])
    parts: List[str] = [
        "<!DOCTYPE html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>repro study {html.escape(study.key[:12])}</title>",
        f"<style>{_STYLE}</style></head><body>",
        f"<h1>Study <code>{html.escape(study.key[:16])}</code></h1>",
        "<p class='meta'>"
        f"strategy={html.escape(study.strategy)} seed={study.seed} "
        f"batch={study.batch} trials={len(study.trials)} "
        f"feasible={len(study.feasible_trials())} "
        f"workloads={html.escape(', '.join(study.workloads))}<br>"
        f"axes={html.escape(', '.join(str(a) for a in axes))} "
        f"hypervolume={frontier['hypervolume']:.6g}</p>",
        f"<h2>{html.escape(y_axis.name)} vs {html.escape(x_axis.name)}</h2>",
        _scatter_svg(study, x_axis, y_axis, front_indices),
        "<h2>Trials</h2>",
        _trial_table(study, axes, front_indices),
        "</body></html>",
    ]
    return "\n".join(parts) + "\n"


def _scatter_svg(
    study: Study, x_axis: Axis, y_axis: Axis, front_indices: set
) -> str:
    width, height, pad = 560, 360, 45
    feasible = study.feasible_trials()
    if not feasible:
        return (
            f"<svg width='{width}' height='{height}'>"
            "<text x='20' y='30'>no feasible trials</text></svg>"
        )
    xs = [float(getattr(t, x_axis.name)) for t in feasible]
    ys = [float(getattr(t, y_axis.name)) for t in feasible]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    def sx(v: float) -> float:
        return pad + (v - x_lo) / x_span * (width - 2 * pad)

    def sy(v: float) -> float:
        return height - pad - (v - y_lo) / y_span * (height - 2 * pad)

    dots = []
    for t, x, y in zip(feasible, xs, ys):
        on_front = t.index in front_indices
        dots.append(
            f"<circle cx='{sx(x):.1f}' cy='{sy(y):.1f}' "
            f"r='{5 if on_front else 3}' "
            f"fill='{'#2a7' if on_front else '#99c'}'>"
            f"<title>trial {t.index}: {y_axis.name}={y:.4g} "
            f"{x_axis.name}={x:.4g}</title></circle>"
        )
    front = sorted(
        (t for t in feasible if t.index in front_indices),
        key=lambda t: float(getattr(t, x_axis.name)),
    )
    path = " ".join(
        f"{'M' if i == 0 else 'L'}"
        f"{sx(float(getattr(t, x_axis.name))):.1f},"
        f"{sy(float(getattr(t, y_axis.name))):.1f}"
        for i, t in enumerate(front)
    )
    return (
        f"<svg width='{width}' height='{height}' "
        f"viewBox='0 0 {width} {height}'>"
        f"<line x1='{pad}' y1='{height - pad}' x2='{width - pad}' "
        f"y2='{height - pad}' stroke='#888'/>"
        f"<line x1='{pad}' y1='{pad}' x2='{pad}' y2='{height - pad}' "
        f"stroke='#888'/>"
        f"<text x='{width // 2}' y='{height - 8}' text-anchor='middle' "
        f"font-size='11'>{html.escape(x_axis.name)} "
        f"({x_lo:.4g} .. {x_hi:.4g})</text>"
        f"<text x='12' y='{height // 2}' font-size='11' "
        f"transform='rotate(-90 12 {height // 2})' text-anchor='middle'>"
        f"{html.escape(y_axis.name)} ({y_lo:.4g} .. {y_hi:.4g})</text>"
        + (f"<path d='{path}' fill='none' stroke='#2a7'/>" if path else "")
        + "".join(dots)
        + "</svg>"
    )


def _trial_table(
    study: Study, axes: Sequence[Axis], front_indices: set
) -> str:
    head = (
        "<tr><th>#</th><th class='l'>kind</th><th>feasible</th>"
        + "".join(f"<th>{html.escape(a.name)}</th>" for a in axes)
        + "<th class='l'>bottleneck</th></tr>"
    )
    rows = [head]
    for t in study.trials:
        cells = [
            f"<td>{t.index}</td>",
            f"<td class='l'>{html.escape(t.kind)}</td>",
            f"<td>{'yes' if t.feasible else 'no'}</td>",
        ]
        for a in axes:
            value = getattr(t, a.name)
            cells.append(
                f"<td>{value:.5g}</td>"
                if t.feasible and value is not None
                else "<td>-</td>"
            )
        cells.append(f"<td class='l'>{html.escape(t.bottleneck)}</td>")
        marker = " class='front'" if t.index in front_indices else ""
        rows.append(f"<tr{marker}>{''.join(cells)}</tr>")
    return "<table>" + "".join(rows) + "</table>"
