"""The batched strategy protocol every optimizer implements.

``ask(n)`` yields up to ``n`` :class:`Proposal`s, the runner evaluates
them (serially or through the :mod:`repro.jobs` pool — the strategy never
knows which), and ``tell(trials)`` feeds the scored
:class:`~repro.search.study.Trial`s back in global evaluation order.
"Serial" is just ``batch=1``; a strategy whose moves are inherently
sequential (the annealer) advertises ``max_batch = 1`` and the runner
respects it.

``snapshot()`` freezes the strategy so a persisted study can resume
bit-identically; determinism across processes comes from
:func:`stable_rng`, the PYTHONHASHSEED-stable ``zlib.crc32`` derivation
scheme shared with :mod:`repro.validate`.
"""

from __future__ import annotations

import copy
import random
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Type

from ..dse import DseConfig
from ..ir import Workload
from .study import Trial


class SearchError(RuntimeError):
    """A search-level failure (unknown strategy, infeasible seed, ...)."""


def stable_rng(seed: int, *tags: str) -> random.Random:
    """A :class:`random.Random` derived from ``seed`` and string tags.

    Uses ``zlib.crc32`` (not ``hash()``), so the stream is identical for
    every PYTHONHASHSEED, process, and platform — the same scheme
    :mod:`repro.validate` uses for its case seeds.
    """
    token = ":".join(tags)
    mix = zlib.crc32(token.encode("utf-8"))
    return random.Random(((int(seed) & 0xFFFFFFFF) << 32) | mix)


@dataclass
class Proposal:
    """One candidate design the strategy wants evaluated.

    ``kind`` selects the evaluator (``candidate``: a concrete ADG +
    schedules from the annealer; ``genome``: a transform-sequence genome;
    ``params``: a point in the TPE parameter space).  ``payload`` is the
    picklable evaluation input; ``lineage`` is its JSON-able provenance,
    recorded verbatim on the resulting trial.
    """

    kind: str
    payload: Dict[str, Any]
    lineage: Any = None


@dataclass
class SearchContext:
    """Everything a strategy needs to know about the problem."""

    workloads: List[Workload]
    config: DseConfig = field(default_factory=DseConfig)
    seed: int = 0
    name: str = "overlay"


class Strategy:
    """Base class: batched ask/tell with snapshot/restore."""

    #: Registry name; subclasses override.
    name = "base"
    #: Largest useful batch (the runner clamps its asks to this).
    max_batch = 1_000_000

    def __init__(self, ctx: SearchContext) -> None:
        self.ctx = ctx

    @classmethod
    def create(
        cls, ctx: SearchContext, state: Any = None
    ) -> "Strategy":
        """Build a strategy, restoring from a snapshot when given."""
        strategy = cls(ctx)
        if state is not None:
            strategy.restore(state)
        return strategy

    @property
    def exhausted(self) -> bool:
        """True when the strategy has nothing left to propose."""
        return False

    def ask(self, n: int) -> List[Proposal]:
        raise NotImplementedError

    def tell(self, trials: Sequence[Trial]) -> None:
        raise NotImplementedError

    def snapshot(self) -> Any:
        """Picklable state that :meth:`restore` accepts.

        Default: a deep copy of the instance dict minus the context
        (which the restoring side reconstructs itself).
        """
        return {
            k: copy.deepcopy(v)
            for k, v in self.__dict__.items()
            if k != "ctx"
        }

    def restore(self, state: Any) -> None:
        self.__dict__.update(copy.deepcopy(state))

    def finish(self) -> Optional[Any]:
        """Optional final artifact (the annealer returns its DseResult)."""
        return None


#: name -> strategy class; populated by :func:`register`.
STRATEGIES: Dict[str, Type[Strategy]] = {}


def register(cls: Type[Strategy]) -> Type[Strategy]:
    STRATEGIES[cls.name] = cls
    return cls


def strategy_names() -> List[str]:
    return sorted(STRATEGIES)


def make_strategy(
    name: str, ctx: SearchContext, state: Any = None
) -> Strategy:
    """Instantiate a registered strategy (optionally from a snapshot)."""
    if name not in STRATEGIES:
        raise SearchError(
            f"unknown strategy {name!r}; available: "
            + ", ".join(strategy_names())
        )
    return STRATEGIES[name].create(ctx, state)
