"""Persistent multi-objective studies over evaluated DSE points.

A :class:`Study` is the durable record of one search run: every evaluated
point — objective, modeled seconds, the full LUT/FF/BRAM/DSP vector, the
seed, and the transform lineage that produced it — in global evaluation
order.  Studies are stored content-addressed in the engine's
:class:`~repro.engine.store.ArtifactStore` under a key derived from
(workloads, config, strategy, seed, batch) — worker count is deliberately
excluded, so a pool run and a serial run land on the *same* artifact and
must produce byte-identical contents (the runner guarantees they do).

Alongside the study the store keeps the strategy's snapshot, so an
interrupted run resumes exactly where it stopped and finishes
bit-identical to a run that never stopped.
"""

from __future__ import annotations

import json
import pickle
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..engine.hashing import CODE_SCHEMA_VERSION, canonicalize, fingerprint
from .pareto import (
    DEFAULT_AXES,
    Axis,
    default_reference,
    hypervolume,
    non_dominated,
)

#: Bump when the Trial/Study layout or the export JSON schema changes.
SEARCH_SCHEMA = 1


@dataclass
class Trial:
    """One evaluated search point (scalars only; exported to JSON)."""

    index: int                       # global evaluation order within the study
    strategy: str
    kind: str                        # candidate | genome | params | imported
    lineage: Any                     # JSON-able provenance (genes, params, ...)
    seed: int
    feasible: bool
    objective: Optional[float]
    modeled_seconds: float
    lut: float = 0.0
    ff: float = 0.0
    bram: float = 0.0
    dsp: float = 0.0
    bottleneck: str = ""
    #: In-memory only: the evaluated SystemChoice, handed to the strategy's
    #: ``tell`` and stripped before the trial is persisted/exported.
    choice: Any = field(default=None, repr=False, compare=False)

    def stripped(self) -> "Trial":
        """Copy with the non-serializable payload removed (for the study)."""
        return replace(self, choice=None)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "strategy": self.strategy,
            "kind": self.kind,
            "lineage": self.lineage,
            "seed": self.seed,
            "feasible": self.feasible,
            "objective": self.objective,
            "modeled_seconds": self.modeled_seconds,
            "lut": self.lut,
            "ff": self.ff,
            "bram": self.bram,
            "dsp": self.dsp,
            "bottleneck": self.bottleneck,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "Trial":
        return cls(**{k: doc[k] for k in cls.__dataclass_fields__ if k in doc})


@dataclass
class Study:
    """The persistent record of one search run."""

    key: str
    strategy: str
    seed: int
    batch: int
    workloads: List[str]
    config_fingerprint: str
    trials: List[Trial] = field(default_factory=list)
    schema: int = SEARCH_SCHEMA

    def feasible_trials(self) -> List[Trial]:
        return [
            t for t in self.trials if t.feasible and t.objective is not None
        ]

    def best_trial(self) -> Optional[Trial]:
        feasible = self.feasible_trials()
        if not feasible:
            return None
        return max(feasible, key=lambda t: (t.objective, -t.index))

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "key": self.key,
            "strategy": self.strategy,
            "seed": self.seed,
            "batch": self.batch,
            "workloads": list(self.workloads),
            "config_fingerprint": self.config_fingerprint,
            "trials": [t.as_dict() for t in self.trials],
        }


def study_key(
    workloads: Sequence[Any],
    config: Any,
    strategy: str,
    seed: int,
    batch: int,
) -> str:
    """Content address of one study.

    Worker/shard counts are excluded on purpose: parallelism layout must
    never change which artifact a study lands on (or its bytes).
    """
    return fingerprint(
        {
            "schema": [CODE_SCHEMA_VERSION, SEARCH_SCHEMA],
            "workloads": [canonicalize(w) for w in workloads],
            "config": canonicalize(config),
            "strategy": strategy,
            "seed": int(seed),
            "batch": int(batch),
        }
    )


# ----------------------------------------------------------------------
# Store persistence
# ----------------------------------------------------------------------
def save_study(store: Any, study: Study, strategy_state: Any = None) -> None:
    """Persist the study plus the strategy snapshot under the study key.

    The payload is normalized through one pickle round-trip first (the
    :class:`~repro.jobs.Checkpointing` idiom) so serial and pool runs of
    the same study write byte-identical artifacts.
    """
    payload = {"study": study, "strategy_state": strategy_state}
    payload = pickle.loads(pickle.dumps(payload))
    store.put(
        study.key,
        payload,
        meta={
            "kind": "study",
            "strategy": study.strategy,
            "seed": study.seed,
            "batch": study.batch,
            "workloads": list(study.workloads),
            "trials": len(study.trials),
            "schema": study.schema,
        },
    )


def load_study(store: Any, key: str) -> Tuple[Optional[Study], Any]:
    """The stored (study, strategy snapshot) for ``key``, or (None, None)."""
    payload = store.get(key)
    if not isinstance(payload, dict) or "study" not in payload:
        return None, None
    study = payload["study"]
    if not isinstance(study, Study) or study.schema != SEARCH_SCHEMA:
        return None, None
    return study, payload.get("strategy_state")


def list_studies(store: Any) -> List[Dict[str, Any]]:
    """Meta rows of every study artifact in the store, sorted by key."""
    rows = []
    for key in store.keys():
        meta = store.meta(key)
        if meta and meta.get("kind") == "study":
            rows.append({"key": key, **meta})
    return sorted(rows, key=lambda r: r["key"])


# ----------------------------------------------------------------------
# Frontier + export
# ----------------------------------------------------------------------
def trial_vector(trial: Trial, axes: Sequence[Axis]) -> List[float]:
    return [float(getattr(trial, axis.name)) for axis in axes]


def frontier_doc(
    study: Study, axes: Sequence[Axis] = DEFAULT_AXES
) -> Dict[str, Any]:
    """The deterministic Pareto-frontier document for a study."""
    senses = [a.sense for a in axes]
    feasible = study.feasible_trials()
    points = [trial_vector(t, axes) for t in feasible]
    front = non_dominated(points, senses)
    reference = default_reference(points, senses)
    front_points = [points[i] for i in front]
    return {
        "schema": SEARCH_SCHEMA,
        "axes": [str(a) for a in axes],
        "reference": reference,
        "hypervolume": hypervolume(front_points, senses, reference),
        "points": [
            {
                "trial": feasible[i].index,
                **{axis.name: points[i][k] for k, axis in enumerate(axes)},
            }
            for i in front
        ],
    }


def export_study(study: Study, axes: Sequence[Axis] = DEFAULT_AXES) -> str:
    """Canonical JSON of the full study plus its Pareto frontier."""
    doc = study.as_dict()
    doc["pareto"] = frontier_doc(study, axes)
    return json.dumps(doc, sort_keys=True, indent=2) + "\n"


def export_frontier(study: Study, axes: Sequence[Axis] = DEFAULT_AXES) -> str:
    """Canonical JSON of just the Pareto frontier."""
    return json.dumps(frontier_doc(study, axes), sort_keys=True, indent=2) + "\n"


# ----------------------------------------------------------------------
# Merge + import
# ----------------------------------------------------------------------
def _trial_content_key(trial: Trial) -> str:
    doc = trial.as_dict()
    doc.pop("index")
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def merge_studies(studies: Sequence[Study]) -> Study:
    """Union of several studies as a new study; deterministic and deduped.

    Input studies are ordered by key, trials are re-indexed in that order,
    and trials identical in everything but index collapse to their first
    occurrence — merging a study with itself is the identity.
    """
    if not studies:
        raise ValueError("nothing to merge")
    ordered = sorted(studies, key=lambda s: s.key)
    key = fingerprint(
        {
            "schema": [CODE_SCHEMA_VERSION, SEARCH_SCHEMA],
            "merged": [s.key for s in ordered],
        }
    )
    seen: Dict[str, bool] = {}
    trials: List[Trial] = []
    for study in ordered:
        for trial in study.trials:
            content = _trial_content_key(trial)
            if content in seen:
                continue
            seen[content] = True
            trials.append(replace(trial, index=len(trials)))
    workloads = sorted({w for s in ordered for w in s.workloads})
    fps = {s.config_fingerprint for s in ordered}
    return Study(
        key=key,
        strategy="merged",
        seed=ordered[0].seed,
        batch=0,
        workloads=workloads,
        config_fingerprint=fps.pop() if len(fps) == 1 else "",
        trials=trials,
    )


def study_from_points(
    points: Sequence[Sequence[float]],
    *,
    workloads: Sequence[str],
    config_fingerprint: str = "",
    seed: int = 0,
    strategy: str = "import",
) -> Study:
    """Build a study from explorer ``AcceptedPoint`` rows or ``dse_point``
    event dicts (the satellite metrics emitted per accepted DSE point)."""
    trials: List[Trial] = []
    for row in points:
        if isinstance(row, dict):
            it = int(row["iteration"])
            modeled_h = float(row.get("modeled_hours", 0.0))
            objective = float(row["objective"])
            lut, bram, dsp = row.get("lut", 0.0), row.get("bram", 0.0), row.get("dsp", 0.0)
            ff = row.get("ff", 0.0)
            row_seed = int(row.get("seed", seed))
        else:
            it, modeled_h, objective, lut, ff, bram, dsp = row
            row_seed = seed
        trials.append(
            Trial(
                index=len(trials),
                strategy=strategy,
                kind="imported",
                lineage={"iteration": int(it)},
                seed=row_seed,
                feasible=True,
                objective=float(objective),
                modeled_seconds=float(modeled_h) * 3600.0,
                lut=float(lut),
                ff=float(ff),
                bram=float(bram),
                dsp=float(dsp),
            )
        )
    key = fingerprint(
        {
            "schema": [CODE_SCHEMA_VERSION, SEARCH_SCHEMA],
            "imported": strategy,
            "seed": int(seed),
            "workloads": sorted(workloads),
            "config": config_fingerprint,
            "trials": [t.as_dict() for t in trials],
        }
    )
    return Study(
        key=key,
        strategy=strategy,
        seed=seed,
        batch=0,
        workloads=sorted(workloads),
        config_fingerprint=config_fingerprint,
        trials=trials,
    )


def import_dse_points(
    result: Any,
    *,
    workloads: Sequence[str],
    config_fingerprint: str = "",
    seed: int = 0,
) -> Study:
    """Convert a :class:`~repro.dse.DseResult`'s accepted-point trajectory
    into a study (the engine records the same rows as ``dse_point`` JSONL
    events; both roads lead here)."""
    return study_from_points(
        result.points,
        workloads=workloads,
        config_fingerprint=config_fingerprint,
        seed=seed,
        strategy="anneal-import",
    )
