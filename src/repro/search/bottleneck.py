"""Greedy bottleneck-repair search.

Each evaluated design reports the perf model's dominant bottleneck class
(the limiting factor of the slowest workload — spad read/write ports,
DMA, NoC, L2, DRAM, recurrence/generate engines, or compute-bound).  The
strategy keeps the best genome found so far and extends it with
transforms *targeted at that bottleneck* — the hill-climbing analogue of
how a human reads the roofline and widens whichever resource is pinching.
A small exploration probability keeps it from wedging when the targeted
repairs stop paying.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from .space import TRANSFORM_NAMES, Gene
from .strategy import Proposal, SearchContext, Strategy, register, stable_rng
from .study import Trial

#: bottleneck class -> transforms most likely to relieve it.
REPAIRS: Dict[str, Tuple[str, ...]] = {
    "spad": ("mutate_spad", "add_port", "resize_port"),
    "dma": ("mutate_engine_bandwidth", "add_port", "resize_port"),
    "noc": ("mutate_spad", "add_port"),
    "l2": ("mutate_spad",),
    "dram": ("mutate_spad", "mutate_engine_bandwidth"),
    "rec": ("mutate_engine_bandwidth",),
    "gen": ("mutate_engine_bandwidth",),
    # Compute-bound: grow the fabric itself.
    "none": (
        "add_pe",
        "add_cap",
        "resize_pe_width",
        "add_switch",
        "add_fabric_link",
    ),
}


def repairs_for(bottleneck: str) -> Tuple[str, ...]:
    """The repair set for a perf-model factor key (e.g. ``spad3.read``)."""
    head = bottleneck.split(".", 1)[0]
    head = "".join(c for c in head if not c.isdigit())
    return REPAIRS.get(head, REPAIRS["none"])


@register
class BottleneckStrategy(Strategy):
    """Greedy repair guided by the dominant bottleneck class."""

    name = "bottleneck"
    explore_prob = 0.25

    def __init__(self, ctx: SearchContext) -> None:
        super().__init__(ctx)
        self.rng = stable_rng(ctx.seed, "search", self.name)
        self.salt = 0
        self.best_genes: Tuple[Gene, ...] = ()
        self.best_objective: Optional[float] = None
        self.bottleneck = "none"
        self.booted = False

    def _proposal(self, genes: Tuple[Gene, ...]) -> Proposal:
        return Proposal(
            kind="genome",
            payload={"genes": [list(g) for g in genes]},
            lineage={
                "bottleneck": self.bottleneck,
                "genes": [list(g) for g in genes],
            },
        )

    def ask(self, n: int) -> List[Proposal]:
        if not self.booted:
            # Score the unmodified seed design first to learn its
            # bottleneck; everything grows from there.
            self.booted = True
            return [self._proposal(())]
        repairs = repairs_for(self.bottleneck)
        proposals = []
        for i in range(max(0, n)):
            if self.rng.random() < self.explore_prob:
                op = self.rng.choice(TRANSFORM_NAMES)
            else:
                op = repairs[i % len(repairs)]
            self.salt += 1
            proposals.append(
                self._proposal(self.best_genes + ((op, self.salt),))
            )
        return proposals

    def tell(self, trials: Sequence[Trial]) -> None:
        for trial in trials:
            if not trial.feasible or trial.objective is None:
                continue
            if (
                self.best_objective is None
                or trial.objective > self.best_objective
            ):
                self.best_objective = trial.objective
                self.best_genes = tuple(
                    (g[0], int(g[1])) for g in trial.lineage["genes"]
                )
                if trial.bottleneck:
                    self.bottleneck = trial.bottleneck
