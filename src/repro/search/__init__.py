"""repro.search — pluggable DSE strategies + persistent Pareto studies.

The annealer becomes one strategy among several behind a batched
``ask(n)/tell(trials)/snapshot()`` protocol (serial is just batch=1):

* :mod:`~repro.search.anneal` — the legacy simulated-annealing loop
  re-based onto the interface, byte-identical to ``Explorer.run``;
* :mod:`~repro.search.bottleneck` — greedy repair guided by the perf
  model's dominant bottleneck class;
* :mod:`~repro.search.evolutionary` — mutation + crossover over ADG
  transform-sequence genomes;
* :mod:`~repro.search.tpe` — a dependency-free tree-structured Parzen
  estimator over the parameter grid.

Every evaluated point lands in a persistent, resumable
:class:`~repro.search.study.Study` (content-addressed in the engine
store); :mod:`~repro.search.pareto` supplies non-dominated sorting and
hypervolume on top, and :mod:`~repro.search.report` renders the
self-contained HTML report.  Proposals fan out through
:mod:`repro.jobs`, so pool and serial runs produce identical studies.
"""

from .pareto import (
    DEFAULT_AXES,
    Axis,
    default_reference,
    dominates,
    hypervolume,
    non_dominated,
    non_dominated_sort,
    parse_axis,
)
from .report import render_html
from .strategy import (
    Proposal,
    SearchContext,
    SearchError,
    Strategy,
    make_strategy,
    register,
    stable_rng,
    strategy_names,
)
from .study import (
    SEARCH_SCHEMA,
    Study,
    Trial,
    export_frontier,
    export_study,
    frontier_doc,
    import_dse_points,
    list_studies,
    load_study,
    merge_studies,
    save_study,
    study_from_points,
    study_key,
)

# Importing the strategy modules registers them.
from .anneal import AnnealStrategy
from .bottleneck import BottleneckStrategy
from .evolutionary import EvolutionaryStrategy
from .tpe import TpeStrategy
from .runner import SearchOutcome, SearchSettings, run_search

__all__ = [
    "AnnealStrategy",
    "Axis",
    "BottleneckStrategy",
    "DEFAULT_AXES",
    "EvolutionaryStrategy",
    "Proposal",
    "SEARCH_SCHEMA",
    "SearchContext",
    "SearchError",
    "SearchOutcome",
    "SearchSettings",
    "Strategy",
    "Study",
    "TpeStrategy",
    "Trial",
    "default_reference",
    "dominates",
    "export_frontier",
    "export_study",
    "frontier_doc",
    "hypervolume",
    "import_dse_points",
    "list_studies",
    "load_study",
    "make_strategy",
    "merge_studies",
    "non_dominated",
    "non_dominated_sort",
    "parse_axis",
    "register",
    "render_html",
    "run_search",
    "save_study",
    "stable_rng",
    "strategy_names",
    "study_from_points",
    "study_key",
]
