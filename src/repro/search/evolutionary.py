"""Evolutionary search over ADG transform-sequence genomes.

A genome is an ordered list of ``(transform, salt)`` genes replayed onto
the seed ADG (see :mod:`repro.search.space`).  Generations of a fixed
population evolve by elite selection, single-point crossover, and
append/replace/delete mutation.  All randomness flows from one
:func:`~repro.search.strategy.stable_rng` stream consumed in a fixed
order (breeding happens only after the whole generation is told, and the
runner tells in global index order), so the study is byte-identical for
any worker count.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .space import TRANSFORM_NAMES, Gene
from .strategy import Proposal, SearchContext, Strategy, register, stable_rng
from .study import Trial

#: Objective assigned to infeasible genomes when ranking.
_INFEASIBLE = float("-inf")


@register
class EvolutionaryStrategy(Strategy):
    """Mutation + crossover over transform sequences."""

    name = "evolutionary"
    population = 8
    elite = 4
    init_genes = 2
    crossover_prob = 0.6

    def __init__(self, ctx: SearchContext) -> None:
        super().__init__(ctx)
        self.max_batch = self.population
        self.rng = stable_rng(ctx.seed, "search", self.name)
        self.salt = 0
        self.generation = 0
        self.inflight = 0
        self.queue: List[Proposal] = []
        self.scored: List[Tuple[float, Tuple[Gene, ...]]] = []
        self.elites: List[Tuple[float, Tuple[Gene, ...]]] = []
        self._seed_population()

    # ------------------------------------------------------------------
    def _next_salt(self) -> int:
        self.salt += 1
        return self.salt

    def _proposal(self, genes: Tuple[Gene, ...]) -> Proposal:
        return Proposal(
            kind="genome",
            payload={"genes": [list(g) for g in genes]},
            lineage={
                "generation": self.generation,
                "genes": [list(g) for g in genes],
            },
        )

    def _seed_population(self) -> None:
        for _ in range(self.population):
            genes = tuple(
                (self.rng.choice(TRANSFORM_NAMES), self._next_salt())
                for _ in range(self.init_genes)
            )
            self.queue.append(self._proposal(genes))

    # ------------------------------------------------------------------
    def ask(self, n: int) -> List[Proposal]:
        if not self.queue and self.inflight == 0:
            self._breed()
        take = self.queue[: max(0, n)]
        self.queue = self.queue[len(take):]
        self.inflight += len(take)
        return take

    def tell(self, trials: Sequence[Trial]) -> None:
        for trial in trials:
            genes = tuple(
                (g[0], int(g[1])) for g in trial.lineage["genes"]
            )
            score = (
                trial.objective
                if trial.feasible and trial.objective is not None
                else _INFEASIBLE
            )
            self.scored.append((score, genes))
        self.inflight -= len(trials)

    # ------------------------------------------------------------------
    def _breed(self) -> None:
        self.generation += 1
        pool = self.scored + self.elites
        ranked = sorted(pool, key=lambda sg: (-sg[0], sg[1]))
        self.elites = ranked[: self.elite]
        self.scored = []
        parents = [g for _, g in self.elites] or [()]
        for _ in range(self.population):
            if len(parents) >= 2 and self.rng.random() < self.crossover_prob:
                a, b = self.rng.sample(parents, 2)
                cut_a = self.rng.randint(0, len(a))
                cut_b = self.rng.randint(0, len(b))
                child = tuple(a[:cut_a]) + tuple(b[cut_b:])
            else:
                child = self.rng.choice(parents)
            self.queue.append(self._proposal(self._mutate(child)))

    def _mutate(self, genes: Tuple[Gene, ...]) -> Tuple[Gene, ...]:
        out = list(genes)
        roll = self.rng.random()
        if roll < 0.5 or not out:
            out.append((self.rng.choice(TRANSFORM_NAMES), self._next_salt()))
        elif roll < 0.8:
            i = self.rng.randrange(len(out))
            out[i] = (self.rng.choice(TRANSFORM_NAMES), self._next_salt())
        else:
            out.pop(self.rng.randrange(len(out)))
        return tuple(out)
