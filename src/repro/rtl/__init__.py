"""RTL backend: multi-backend structural emission + FPGA floorplanning.

:mod:`repro.rtl.ir` builds a backend-neutral structural design from a
sysADG; named backends (``verilog``, ``migen``) render it.  The legacy
:func:`emit_system` / :func:`emit_tile` entry points stay as aliases for
the ``verilog`` backend, whose output is golden-gated byte-identical to
the pre-refactor emitter.
"""

from .backends import (
    BACKENDS,
    Backend,
    backend_names,
    get_backend,
    register_backend,
)
from .floorplan import (
    DRAM_CONTROLLER_XY,
    Floorplan,
    FloorplanError,
    NUM_SLRS,
    TilePlacement,
    estimated_frequency,
    floorplan,
)
from .ir import (
    Comment,
    Design,
    Instance,
    Module,
    Port,
    Wire,
    all_modules,
    build_design,
    build_tile_design,
    design_stats,
)
from .migen_backend import MigenBackend
from .verilog import VerilogBackend, emit_system, emit_tile, rtl_stats

__all__ = [
    "BACKENDS",
    "Backend",
    "Comment",
    "DRAM_CONTROLLER_XY",
    "Design",
    "Floorplan",
    "FloorplanError",
    "Instance",
    "MigenBackend",
    "Module",
    "NUM_SLRS",
    "Port",
    "TilePlacement",
    "VerilogBackend",
    "Wire",
    "all_modules",
    "backend_names",
    "build_design",
    "build_tile_design",
    "design_stats",
    "emit_system",
    "emit_tile",
    "estimated_frequency",
    "floorplan",
    "get_backend",
    "register_backend",
    "rtl_stats",
]
