"""RTL backend: structural Verilog emission + FPGA floorplanning."""

from .floorplan import (
    DRAM_CONTROLLER_XY,
    Floorplan,
    NUM_SLRS,
    TilePlacement,
    estimated_frequency,
    floorplan,
)
from .verilog import emit_system, emit_tile, rtl_stats

__all__ = [
    "DRAM_CONTROLLER_XY",
    "Floorplan",
    "NUM_SLRS",
    "TilePlacement",
    "emit_system",
    "emit_tile",
    "estimated_frequency",
    "floorplan",
    "rtl_stats",
]
