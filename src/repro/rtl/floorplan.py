"""FPGA floorplanner for multi-tile overlays (Fig. 12 stand-in).

The XCVU9P is three stacked dies (SLRs) joined by interposer crossings;
the DRAM controller is pinned to the bottom die.  The floorplanner packs
tiles into SLR-aligned regions, places each tile's DMA engine edge nearest
the DRAM controller (Section VI-D's guidance), and reports die crossings —
the quantity the conservative-pipelining design rule exists to tolerate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..adg import SysADG
from ..model.resource import AnalyticEstimator, XCVU9P

#: XCVU9P geometry: 3 super-logic regions, each about a third of the LUTs.
NUM_SLRS = 3
SLR_LUTS = XCVU9P.lut / NUM_SLRS

#: Normalized chip coordinates: x in [0, 1), y in [0, NUM_SLRS).
DRAM_CONTROLLER_XY = (0.5, 0.15)  # bottom die, center column


@dataclass(frozen=True)
class TilePlacement:
    tile: int
    slr: int
    x: float
    y: float
    lut: float

    def distance_to_dram(self) -> float:
        dx = self.x - DRAM_CONTROLLER_XY[0]
        dy = self.y - DRAM_CONTROLLER_XY[1]
        return (dx * dx + dy * dy) ** 0.5


class FloorplanError(ValueError):
    """The overlay does not fit the target device."""


@dataclass
class Floorplan:
    overlay: str
    frequency_mhz: float
    placements: List[TilePlacement]
    slr_utilization: Dict[int, float]
    die_crossings: int
    #: False when the overlay demands more LUTs than the device has; the
    #: placements are then a best-effort sketch (overflow tiles pile onto
    #: the top die) and the top-die utilization exceeds 100%.
    feasible: bool = True

    def ascii_art(self) -> str:
        """Fig. 12-style sketch: one row of boxes per SLR."""
        title = f"Floorplan: {self.overlay} @ {self.frequency_mhz} MHz"
        if not self.feasible:
            title += "  ** INFEASIBLE: exceeds device capacity **"
        lines = [title]
        for slr in reversed(range(NUM_SLRS)):
            tiles = [p for p in self.placements if p.slr == slr]
            boxes = " ".join(f"[T{p.tile:02d}]" for p in tiles) or "(empty)"
            util = self.slr_utilization.get(slr, 0.0)
            lines.append(f"SLR{slr} ({util:4.0%}): {boxes}")
            if slr > 0:
                lines.append("  ~~~~ interposer crossing ~~~~")
        lines.append("        [DRAM controller]")
        return "\n".join(lines)


def floorplan(sysadg: SysADG, strict: bool = False) -> Floorplan:
    """Greedy SLR packing: tiles fill the bottom die (nearest DRAM) first.

    Tiles are identical, so the packer simply assigns them to SLRs in
    order of remaining capacity, lowest die first; positions within an SLR
    spread across the x axis.

    An overlay that demands more LUTs than the XCVU9P has cannot be
    packed: the returned plan is marked ``feasible=False`` (overflow
    tiles pile onto the top die, whose reported utilization then exceeds
    100%), or, with ``strict=True``, a :class:`FloorplanError` is raised.
    """
    est = AnalyticEstimator()
    tile_lut = est.tile(sysadg.adg).lut + 24_000  # + control core
    n = sysadg.params.num_tiles
    capacity = NUM_SLRS * SLR_LUTS
    feasible = n * tile_lut <= capacity
    if strict and not feasible:
        raise FloorplanError(
            f"overlay {sysadg.name!r} needs {n * tile_lut:,.0f} LUTs but "
            f"the XCVU9P has {capacity:,.0f} across {NUM_SLRS} SLRs"
        )
    slr_load = {s: 0.0 for s in range(NUM_SLRS)}
    # Linear packing through the stacked dies: tiles may straddle an SLR
    # boundary (as the paper's quad-tile floorplan does); a straddling tile
    # is attributed to the die holding its center of mass.
    offset = 0.0
    straddles = 0
    assigned: List[int] = []
    for t in range(n):
        start, end = offset, offset + tile_lut
        center = (start + end) / 2.0
        # Overflow tiles (center past the top die) sit on the top SLR so
        # the plan stays renderable, but the demand is not silently
        # dropped: their load lands on SLR2 and the plan is infeasible.
        slr = min(NUM_SLRS - 1, int(center / SLR_LUTS))
        if int(start / SLR_LUTS) != int(max(start, end - 1) / SLR_LUTS):
            straddles += 1
        for s in range(NUM_SLRS):
            lo, hi = s * SLR_LUTS, (s + 1) * SLR_LUTS
            if s == NUM_SLRS - 1:
                hi = float("inf")  # overflow demand counts against SLR2
            slr_load[s] += max(0.0, min(end, hi) - max(start, lo))
        assigned.append(slr)
        offset = end
    # Positions spread across each die's actual occupants, so x stays in
    # the documented [0, 1) whatever the packing looks like.
    per_slr_total: Dict[int, int] = {s: 0 for s in range(NUM_SLRS)}
    for slr in assigned:
        per_slr_total[slr] += 1
    per_slr_seen: Dict[int, int] = {s: 0 for s in range(NUM_SLRS)}
    placements: List[TilePlacement] = []
    for t, slr in enumerate(assigned):
        idx = per_slr_seen[slr]
        per_slr_seen[slr] += 1
        placements.append(
            TilePlacement(
                tile=t,
                slr=slr,
                x=(idx + 0.5) / per_slr_total[slr],
                y=slr + 0.5,
                lut=tile_lut,
            )
        )
    # NoC and L2 sit with the DRAM controller on SLR0; every tile on a
    # higher die contributes one die crossing on its memory path, and a
    # straddling tile crosses within its own datapath.
    crossings = sum(p.slr for p in placements) + straddles
    return Floorplan(
        overlay=sysadg.name,
        frequency_mhz=sysadg.params.frequency_mhz,
        placements=placements,
        slr_utilization={s: slr_load[s] / SLR_LUTS for s in range(NUM_SLRS)},
        die_crossings=crossings,
        feasible=feasible,
    )


def estimated_frequency(plan: Floorplan, base_mhz: float = 115.0) -> float:
    """Clock estimate: die crossings and SLR pressure erode the base clock.

    Calibrated so the paper's quad-tile General overlay lands near its
    reported 92.87 MHz (its critical path sits in the L2 MSHR logic under
    full-die congestion).
    """
    pressure = max(plan.slr_utilization.values()) if plan.slr_utilization else 0
    penalty = 1.0 + 0.12 * plan.die_crossings / max(1, len(plan.placements))
    penalty += 0.4 * max(0.0, pressure - 0.8)
    return base_mhz / penalty
