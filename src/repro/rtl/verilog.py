"""Structural Verilog emission for a sysADG.

Stands in for the Chisel hardware generators of DSAGEN/ChipYard: every ADG
node becomes a module instance, links become wires, and the system level
instantiates tiles, control cores, the NoC crossbar, and the L2.  The
output is synthesizable-shaped structural Verilog (module decls + wiring);
behavioral bodies are generated as documented stubs, since timing/area come
from the resource model, not from simulation of this text.

The emitter is deterministic, so golden-file tests and content hashes are
stable across runs.
"""

from __future__ import annotations

from typing import Dict, List

from ..adg import (
    ADG,
    AdgNode,
    DmaEngine,
    GenerateEngine,
    InputPortHW,
    NodeKind,
    OutputPortHW,
    ProcessingElement,
    RecurrenceEngine,
    RegisterEngine,
    SpadEngine,
    SysADG,
    Switch,
)


def _module_name(node: AdgNode) -> str:
    return f"{node.kind.value}_{node.node_id}"


def _width_bits(node: AdgNode) -> int:
    if isinstance(node, (ProcessingElement, Switch)):
        return node.width_bits
    if isinstance(node, (InputPortHW, OutputPortHW)):
        return node.width_bytes * 8
    return 64


def emit_pe(pe: ProcessingElement) -> str:
    caps = ", ".join(sorted(c.name for c in pe.caps)) or "none"
    ports = []
    for i in range(3):
        ports.append(f"  input  wire [{pe.width_bits-1}:0] operand{i},")
        ports.append(f"  input  wire operand{i}_valid,")
    return f"""// Processing element: caps = {caps}
// delay FIFOs: depth {pe.max_delay_fifo} per operand
module pe_{pe.node_id} (
  input  wire clk,
  input  wire rst,
{chr(10).join(ports)}
  output wire [{pe.width_bits-1}:0] result,
  output wire result_valid
);
  // Dedicated-dataflow datapath (configured instruction; fires when all
  // operands are valid). Functional units: {caps}.
endmodule
"""


def emit_switch(adg: ADG, sw: Switch) -> str:
    n_in = max(1, len(adg.predecessors(sw.node_id)))
    n_out = max(1, len(adg.successors(sw.node_id)))
    return f"""// Circuit-switched operand router ({n_in} in x {n_out} out)
module sw_{sw.node_id} (
  input  wire clk,
  input  wire rst,
  input  wire [{n_in * sw.width_bits - 1}:0] in_bus,
  input  wire [{n_in - 1}:0] in_valid,
  output wire [{n_out * sw.width_bits - 1}:0] out_bus,
  output wire [{n_out - 1}:0] out_valid,
  input  wire [{n_in * n_out - 1}:0] route_config
);
  // Statically-configured crossbar: each output selects one input.
endmodule
"""


def emit_engine(node: AdgNode) -> str:
    name = _module_name(node)
    detail = ""
    if isinstance(node, DmaEngine):
        detail = (
            f"// bandwidth {node.bandwidth_bytes} B/cyc, "
            f"indirect={node.indirect}, ROB {node.rob_entries} entries"
        )
    elif isinstance(node, SpadEngine):
        detail = (
            f"// capacity {node.capacity_bytes} B, "
            f"rd/wr {node.read_bandwidth}/{node.write_bandwidth} B/cyc, "
            f"indirect={node.indirect}"
        )
    elif isinstance(node, RecurrenceEngine):
        detail = f"// buffer {node.buffer_bytes} B"
    return f"""{detail}
module {name} (
  input  wire clk,
  input  wire rst,
  // stream-dispatcher command interface
  input  wire [255:0] stream_entry,
  input  wire stream_entry_valid,
  output wire stream_done,
  // memory-side data
  output wire [511:0] rd_data,
  output wire rd_valid,
  input  wire [511:0] wr_data,
  input  wire wr_valid
);
  // Stream Issue -> Stream Request -> Stream Generation pipeline with
  // one-hot stream-table bypass (Fig. 11).
endmodule
"""


def emit_port(node: AdgNode) -> str:
    width = _width_bits(node)
    name = _module_name(node)
    direction = "input" if isinstance(node, InputPortHW) else "output"
    extras = ""
    if isinstance(node, InputPortHW):
        extras = (
            f"// padding={node.supports_padding} meta={node.supports_meta} "
            f"fifo_depth={node.fifo_depth}"
        )
    return f"""{extras}
module {name} (  // vector {direction} port, {width // 8} B/cyc
  input  wire clk,
  input  wire rst,
  input  wire [{width - 1}:0] enq_data,
  input  wire enq_valid,
  output wire enq_ready,
  output wire [{width - 1}:0] deq_data,
  output wire deq_valid,
  input  wire deq_ready
);
endmodule
"""


def emit_tile(adg: ADG, tile_index: int = 0) -> str:
    """Emit all of one tile's modules plus the tile wrapper."""
    chunks: List[str] = [
        f"// ---- OverGen tile {tile_index}: "
        f"{len(adg.pes)} PEs, {len(adg.switches)} switches ----"
    ]
    for pe in adg.pes:
        chunks.append(emit_pe(pe))
    for sw in adg.switches:
        chunks.append(emit_switch(adg, sw))
    for port in adg.in_ports + adg.out_ports:
        chunks.append(emit_port(port))
    for engine in adg.engines:
        chunks.append(emit_engine(engine))

    wires = []
    instances = []
    for src, dst in adg.links():
        src_node, dst_node = adg.node(src), adg.node(dst)
        width = min(_width_bits(src_node), _width_bits(dst_node))
        wires.append(
            f"  wire [{width - 1}:0] link_{src}_{dst};"
            f"  // {src_node.name} -> {dst_node.name}"
        )
    for node in sorted(adg.nodes(), key=lambda n: n.node_id):
        name = _module_name(node)
        instances.append(f"  {name} u_{name} (.clk(clk), .rst(rst) /* ... */);")
    tile = "\n".join(
        [
            f"module overgen_tile_{tile_index} (",
            "  input  wire clk,",
            "  input  wire rst,",
            "  // RoCC command interface from the control core",
            "  input  wire [63:0] rocc_cmd,",
            "  input  wire rocc_cmd_valid,",
            "  // TileLink memory interface",
            "  output wire [511:0] tl_a,",
            "  input  wire [511:0] tl_d",
            ");",
            "  // stream dispatcher",
            "  wire [255:0] dispatch_bus;",
            *wires,
            *instances,
            "endmodule",
        ]
    )
    chunks.append(tile)
    return "\n".join(chunks)


def emit_system(sysadg: SysADG) -> str:
    """Emit the full SoC: tiles + cores + NoC + L2 (Fig. 8 structure)."""
    p = sysadg.params
    header = f"""// =====================================================================
// OverGen overlay: {sysadg.name}
// tiles={p.num_tiles} l2={p.l2_kib}KiB x {p.l2_banks} banks
// noc={p.noc_bytes_per_cycle}B/cyc dram_channels={p.dram_channels}
// target: XCVU9P @ {p.frequency_mhz} MHz
// =====================================================================
"""
    tile_rtl = emit_tile(sysadg.adg)
    instances = []
    for t in range(p.num_tiles):
        instances.append(
            f"  overgen_tile_0 u_tile_{t} (.clk(clk), .rst(rst) /* ... */);\n"
            f"  rocket_core u_core_{t} (.clk(clk), .rst(rst) /* ... */);"
        )
    top = "\n".join(
        [
            "module overgen_system (",
            "  input  wire clk,",
            "  input  wire rst,",
            "  // AXI4 DRAM channel(s)",
            f"  output wire [{p.dram_channels * 512 - 1}:0] axi_mem",
            ");",
            f"  // crossbar NoC: {p.num_tiles} tiles + L2 + peripherals",
            f"  tilelink_xbar #(.ENDPOINTS({p.num_tiles + 2}), "
            f".WIDTH({p.noc_bytes_per_cycle * 8})) u_noc ();",
            f"  inclusive_l2 #(.KIB({p.l2_kib}), .BANKS({p.l2_banks})) u_l2 ();",
            *instances,
            "endmodule",
        ]
    )
    return header + tile_rtl + "\n" + top + "\n"


def rtl_stats(rtl: str) -> Dict[str, int]:
    """Quick structural statistics of emitted RTL (for tests)."""
    return {
        "modules": rtl.count("\nmodule ") + (1 if rtl.startswith("module") else 0),
        "endmodules": rtl.count("endmodule"),
        "wires": rtl.count("  wire "),
        "lines": rtl.count("\n") + 1,
    }
