"""The ``verilog`` backend: structural Verilog rendering of the RTL IR.

Stands in for the Chisel hardware generators of DSAGEN/ChipYard: every ADG
node becomes a module instance, links become wires, and the system level
instantiates tiles, control cores, the NoC crossbar, and the L2.  The
output is synthesizable-shaped structural Verilog (module decls + wiring);
behavioral bodies are generated as documented stubs, since timing/area come
from the resource model, not from simulation of this text.

This backend is the legacy emitter re-based onto
:mod:`repro.rtl.ir`: its output is golden-gated byte-identical to the
pre-refactor string emitter (``tests/golden/*.v``), so resource-model
training data and content hashes are unchanged.  The module-level
:func:`emit_system` / :func:`emit_tile` / :func:`rtl_stats` functions
remain the stable public API.
"""

from __future__ import annotations

import re
from typing import Dict, List

from ..adg import ADG, SysADG
from .backends import Backend, register_backend
from .ir import Comment, Design, Instance, Module, Wire


@register_backend
class VerilogBackend(Backend):
    """Render the IR as structural Verilog, byte-compatible with the
    original single-string emitter."""

    name = "verilog"
    extension = ".v"

    def render_module(self, module: Module) -> str:
        lines: List[str] = list(module.header)
        decl = f"module {module.name} ("
        if module.decl_comment:
            decl += f"  // {module.decl_comment}"
        lines.append(decl)
        last = len(module.ports) - 1
        for i, port in enumerate(module.ports):
            if port.group:
                lines.append(f"  // {port.group}")
            keyword = "input " if port.direction == "input" else "output"
            rng = "" if port.width is None else f"[{port.width - 1}:0] "
            comma = "," if i < last else ""
            lines.append(f"  {keyword} wire {rng}{port.name}{comma}")
        lines.append(");")
        for item in module.body:
            if isinstance(item, Comment):
                lines.append(f"  // {item.text}")
            elif isinstance(item, Wire):
                trailer = f"  // {item.comment}" if item.comment else ""
                lines.append(
                    f"  wire [{item.width - 1}:0] {item.name};{trailer}"
                )
            elif isinstance(item, Instance):
                if item.params:
                    params = ", ".join(
                        f".{k}({v})" for k, v in item.params
                    )
                    lines.append(
                        f"  {item.module} #({params}) {item.name} ();"
                    )
                else:
                    lines.append(
                        f"  {item.module} {item.name} "
                        "(.clk(clk), .rst(rst) /* ... */);"
                    )
        lines.append("endmodule")
        return "\n".join(lines)

    def render_design(self, design: Design) -> str:
        # Leaf modules carry a trailing newline so the joined stream has
        # a blank line between them — the legacy emitter's chunk shape.
        parts: List[str] = [design.tile_banner]
        for module in design.modules:
            parts.append(self.render_module(module) + "\n")
        parts.append(self.render_module(design.tile))
        tile_text = "\n".join(parts)
        if design.top is None:
            return tile_text
        header = "\n".join(design.banner) + "\n"
        top = self.render_module(design.top)
        return header + tile_text + "\n" + top + "\n"

    def text_inventory(self, text: str) -> Dict[str, int]:
        return {
            "modules": len(re.findall(r"(?m)^module ", text)),
            "instances": len(
                re.findall(r"(?m)^  \w+ (?:#\(.*\) )?u_\w+ \(", text)
            ),
        }


def emit_tile(adg: ADG, tile_index: int = 0) -> str:
    """Emit all of one tile's modules plus the tile wrapper."""
    return VerilogBackend().emit_tile(adg, tile_index)


def emit_system(sysadg: SysADG) -> str:
    """Emit the full SoC: tiles + cores + NoC + L2 (Fig. 8 structure)."""
    return VerilogBackend().emit_system(sysadg)


#: Standalone wire declarations — module-body wires, not the ``input  wire``
#: / ``output wire`` port declarations (which also contain ``" wire "``).
_WIRE_DECL = re.compile(r"^\s*wire\b", re.MULTILINE)


def rtl_stats(rtl: str) -> Dict[str, int]:
    """Quick structural statistics of emitted RTL (for tests)."""
    return {
        "modules": rtl.count("\nmodule ")
        + (1 if rtl.startswith("module") else 0),
        "endmodules": rtl.count("endmodule"),
        "wires": len(_WIRE_DECL.findall(rtl)),
        "lines": rtl.count("\n") + 1,
    }
