"""Backend-neutral structural RTL representation of a sysADG.

The emitter used to be a single string-builder; this module is the seam
that replaced it.  :func:`build_design` walks the ADG once and produces a
:class:`Design` — a tree of :class:`Module`/:class:`Port`/:class:`Wire`/
:class:`Instance` records — which every registered backend renders into
its own surface syntax (``repro.rtl.backends``).  The IR carries enough
formatting metadata (header comment lines, port-group comments, trailing
wire comments) for the ``verilog`` backend to reproduce the legacy
emitter byte-for-byte, while staying abstract enough for structurally
different backends (the migen one) to ignore those hints.

Everything here is deterministic: nodes are walked in ADG order and
instances are sorted by node id, so golden files and content hashes are
stable across runs and PYTHONHASHSEED values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..adg import (
    ADG,
    AdgNode,
    DmaEngine,
    InputPortHW,
    OutputPortHW,
    ProcessingElement,
    RecurrenceEngine,
    SpadEngine,
    SysADG,
    Switch,
)


def _module_name(node: AdgNode) -> str:
    return f"{node.kind.value}_{node.node_id}"


def _width_bits(node: AdgNode) -> int:
    if isinstance(node, (ProcessingElement, Switch)):
        return node.width_bits
    if isinstance(node, (InputPortHW, OutputPortHW)):
        return node.width_bytes * 8
    return 64


@dataclass(frozen=True)
class Port:
    """One module port.  ``width=None`` is a scalar (no range)."""

    name: str
    direction: str  # "input" | "output"
    width: Optional[int] = None
    group: str = ""  # comment line introducing a port group, if any


@dataclass(frozen=True)
class Wire:
    """A named interconnect wire inside a module body."""

    name: str
    width: int
    comment: str = ""


@dataclass(frozen=True)
class Comment:
    """A body comment line (without the comment leader)."""

    text: str


@dataclass(frozen=True)
class Instance:
    """A submodule (or blackbox) instantiation.

    ``params`` holds ``#(.NAME(value))``-style parameter overrides;
    instances without parameters are rendered as clk/rst-wired stubs.
    """

    module: str
    name: str
    params: Tuple[Tuple[str, int], ...] = ()


BodyItem = Union[Comment, Wire, Instance]


@dataclass(frozen=True)
class Module:
    """One hardware module: header comments, ports, and an ordered body."""

    name: str
    kind: str  # "pe" | "switch" | "port" | "engine" | "tile" | "system"
    header: Tuple[str, ...] = ()  # raw comment lines ("" renders blank)
    decl_comment: str = ""  # trailing comment on the declaration line
    ports: Tuple[Port, ...] = ()
    body: Tuple[BodyItem, ...] = ()


@dataclass(frozen=True)
class Design:
    """A full emission unit: leaf modules, the tile wrapper, and (for
    system designs) the SoC top plus its banner."""

    name: str
    tile_banner: str
    modules: Tuple[Module, ...]
    tile: Module
    banner: Tuple[str, ...] = ()
    top: Optional[Module] = None


# ---------------------------------------------------------------------------
# sysADG -> IR construction
# ---------------------------------------------------------------------------


def build_pe_module(pe: ProcessingElement) -> Module:
    caps = ", ".join(sorted(c.name for c in pe.caps)) or "none"
    ports: List[Port] = [Port("clk", "input"), Port("rst", "input")]
    for i in range(3):
        ports.append(Port(f"operand{i}", "input", pe.width_bits))
        ports.append(Port(f"operand{i}_valid", "input"))
    ports.append(Port("result", "output", pe.width_bits))
    ports.append(Port("result_valid", "output"))
    return Module(
        name=f"pe_{pe.node_id}",
        kind="pe",
        header=(
            f"// Processing element: caps = {caps}",
            f"// delay FIFOs: depth {pe.max_delay_fifo} per operand",
        ),
        ports=tuple(ports),
        body=(
            Comment(
                "Dedicated-dataflow datapath (configured instruction; "
                "fires when all"
            ),
            Comment(f"operands are valid). Functional units: {caps}."),
        ),
    )


def build_switch_module(adg: ADG, sw: Switch) -> Module:
    n_in = max(1, len(adg.predecessors(sw.node_id)))
    n_out = max(1, len(adg.successors(sw.node_id)))
    return Module(
        name=f"sw_{sw.node_id}",
        kind="switch",
        header=(
            f"// Circuit-switched operand router ({n_in} in x {n_out} out)",
        ),
        ports=(
            Port("clk", "input"),
            Port("rst", "input"),
            Port("in_bus", "input", n_in * sw.width_bits),
            Port("in_valid", "input", n_in),
            Port("out_bus", "output", n_out * sw.width_bits),
            Port("out_valid", "output", n_out),
            Port("route_config", "input", n_in * n_out),
        ),
        body=(
            Comment("Statically-configured crossbar: each output selects "
                    "one input."),
        ),
    )


def build_engine_module(node: AdgNode) -> Module:
    detail = ""
    if isinstance(node, DmaEngine):
        detail = (
            f"// bandwidth {node.bandwidth_bytes} B/cyc, "
            f"indirect={node.indirect}, ROB {node.rob_entries} entries"
        )
    elif isinstance(node, SpadEngine):
        detail = (
            f"// capacity {node.capacity_bytes} B, "
            f"rd/wr {node.read_bandwidth}/{node.write_bandwidth} B/cyc, "
            f"indirect={node.indirect}"
        )
    elif isinstance(node, RecurrenceEngine):
        detail = f"// buffer {node.buffer_bytes} B"
    return Module(
        name=_module_name(node),
        kind="engine",
        header=(detail,),
        ports=(
            Port("clk", "input"),
            Port("rst", "input"),
            Port("stream_entry", "input", 256,
                 group="stream-dispatcher command interface"),
            Port("stream_entry_valid", "input"),
            Port("stream_done", "output"),
            Port("rd_data", "output", 512, group="memory-side data"),
            Port("rd_valid", "output"),
            Port("wr_data", "input", 512),
            Port("wr_valid", "input"),
        ),
        body=(
            Comment("Stream Issue -> Stream Request -> Stream Generation "
                    "pipeline with"),
            Comment("one-hot stream-table bypass (Fig. 11)."),
        ),
    )


def build_port_module(node: AdgNode) -> Module:
    width = _width_bits(node)
    direction = "input" if isinstance(node, InputPortHW) else "output"
    extras = ""
    if isinstance(node, InputPortHW):
        extras = (
            f"// padding={node.supports_padding} meta={node.supports_meta} "
            f"fifo_depth={node.fifo_depth}"
        )
    return Module(
        name=_module_name(node),
        kind="port",
        header=(extras,),
        decl_comment=f"vector {direction} port, {width // 8} B/cyc",
        ports=(
            Port("clk", "input"),
            Port("rst", "input"),
            Port("enq_data", "input", width),
            Port("enq_valid", "input"),
            Port("enq_ready", "output"),
            Port("deq_data", "output", width),
            Port("deq_valid", "output"),
            Port("deq_ready", "input"),
        ),
    )


def build_tile_module(adg: ADG, tile_index: int = 0) -> Module:
    body: List[BodyItem] = [
        Comment("stream dispatcher"),
        Wire("dispatch_bus", 256),
    ]
    for src, dst in adg.links():
        src_node, dst_node = adg.node(src), adg.node(dst)
        width = min(_width_bits(src_node), _width_bits(dst_node))
        body.append(
            Wire(
                f"link_{src}_{dst}",
                width,
                comment=f"{src_node.name} -> {dst_node.name}",
            )
        )
    for node in sorted(adg.nodes(), key=lambda n: n.node_id):
        name = _module_name(node)
        body.append(Instance(name, f"u_{name}"))
    return Module(
        name=f"overgen_tile_{tile_index}",
        kind="tile",
        ports=(
            Port("clk", "input"),
            Port("rst", "input"),
            Port("rocc_cmd", "input", 64,
                 group="RoCC command interface from the control core"),
            Port("rocc_cmd_valid", "input"),
            Port("tl_a", "output", 512, group="TileLink memory interface"),
            Port("tl_d", "input", 512),
        ),
        body=tuple(body),
    )


def build_tile_design(adg: ADG, tile_index: int = 0) -> Design:
    """IR for one tile: every node's module plus the tile wrapper."""
    modules: List[Module] = []
    for pe in adg.pes:
        modules.append(build_pe_module(pe))
    for sw in adg.switches:
        modules.append(build_switch_module(adg, sw))
    for port in adg.in_ports + adg.out_ports:
        modules.append(build_port_module(port))
    for engine in adg.engines:
        modules.append(build_engine_module(engine))
    return Design(
        name=f"tile_{tile_index}",
        tile_banner=(
            f"// ---- OverGen tile {tile_index}: "
            f"{len(adg.pes)} PEs, {len(adg.switches)} switches ----"
        ),
        modules=tuple(modules),
        tile=build_tile_module(adg, tile_index),
    )


def build_design(sysadg: SysADG) -> Design:
    """IR for the full SoC: tiles + cores + NoC + L2 (Fig. 8 structure)."""
    p = sysadg.params
    banner = (
        "// ====================================================="
        "================",
        f"// OverGen overlay: {sysadg.name}",
        f"// tiles={p.num_tiles} l2={p.l2_kib}KiB x {p.l2_banks} banks",
        f"// noc={p.noc_bytes_per_cycle}B/cyc "
        f"dram_channels={p.dram_channels}",
        f"// target: XCVU9P @ {p.frequency_mhz} MHz",
        "// ====================================================="
        "================",
    )
    tile_design = build_tile_design(sysadg.adg)
    body: List[BodyItem] = [
        Comment(f"crossbar NoC: {p.num_tiles} tiles + L2 + peripherals"),
        Instance(
            "tilelink_xbar",
            "u_noc",
            params=(
                ("ENDPOINTS", p.num_tiles + 2),
                ("WIDTH", p.noc_bytes_per_cycle * 8),
            ),
        ),
        Instance(
            "inclusive_l2",
            "u_l2",
            params=(("KIB", p.l2_kib), ("BANKS", p.l2_banks)),
        ),
    ]
    for t in range(p.num_tiles):
        body.append(Instance("overgen_tile_0", f"u_tile_{t}"))
        body.append(Instance("rocket_core", f"u_core_{t}"))
    top = Module(
        name="overgen_system",
        kind="system",
        ports=(
            Port("clk", "input"),
            Port("rst", "input"),
            Port("axi_mem", "output", p.dram_channels * 512,
                 group="AXI4 DRAM channel(s)"),
        ),
        body=tuple(body),
    )
    return Design(
        name=sysadg.name,
        tile_banner=tile_design.tile_banner,
        modules=tile_design.modules,
        tile=tile_design.tile,
        banner=banner,
        top=top,
    )


# ---------------------------------------------------------------------------
# Backend-independent structural accounting
# ---------------------------------------------------------------------------


def all_modules(design: Design) -> Tuple[Module, ...]:
    """Every module of a design in emission order (leaves, tile, top)."""
    mods = list(design.modules) + [design.tile]
    if design.top is not None:
        mods.append(design.top)
    return tuple(mods)


def design_stats(design: Design) -> Dict[str, int]:
    """Structural inventory computed on the IR (shared by all backends)."""
    mods = all_modules(design)
    return {
        "modules": len(mods),
        "ports": sum(len(m.ports) for m in mods),
        "wires": sum(
            1 for m in mods for item in m.body if isinstance(item, Wire)
        ),
        "instances": sum(
            1 for m in mods for item in m.body if isinstance(item, Instance)
        ),
    }
