"""The ``migen`` backend: LiteX-flavoured structural Python netlists.

Renders the same :class:`~repro.rtl.ir.Design` the Verilog backend
consumes, but as a migen/LiteX-style gateware source file: one
``Module`` subclass per hardware module, ports and interconnect as
``Signal``\\ s, generated submodules attached via ``self.submodules`` and
external blackboxes (Rocket cores, the TileLink crossbar, the L2) as
``self.specials += Instance(...)`` — the idiom of ``litex/gateware``
modules.  Clock and reset are implicit (migen's ``sys`` clock domain),
so the IR's ``clk``/``rst`` ports are dropped rather than rendered.

The output is deterministic text derived purely from the IR; it is not
executed by this repository (migen is not a dependency) — it exists so
resource-model training data and floorplanning inputs can come from more
than one emitter shape.
"""

from __future__ import annotations

import re
from typing import Dict, List

from .backends import Backend, register_backend
from .ir import Comment, Design, Instance, Module, Wire, all_modules


def class_name(module_name: str) -> str:
    """``overgen_tile_0`` -> ``OvergenTile0`` (migen class naming)."""
    return "".join(part.capitalize() for part in module_name.split("_"))


def _signal(width) -> str:
    if width is None or width == 1:
        return "Signal()"
    return f"Signal({width})"


def _comment_text(line: str) -> str:
    """Strip a Verilog-style ``// `` leader off an IR header line."""
    return line[3:] if line.startswith("// ") else line.lstrip("/ ")


@register_backend
class MigenBackend(Backend):
    """Render the IR as a migen/LiteX-flavoured structural netlist."""

    name = "migen"
    extension = ".py"

    def render_module(self, module: Module, generated=()) -> str:
        generated = set(generated)
        lines: List[str] = []
        for line in module.header:
            if line:
                lines.append(f"# {_comment_text(line)}")
        decl = f"class {class_name(module.name)}(Module):"
        lines.append(decl)
        doc = module.decl_comment or f"{module.kind} {module.name}"
        lines.append(f'    """{doc}"""')
        lines.append("")
        lines.append("    def __init__(self):")
        body: List[str] = []
        for port in module.ports:
            if port.name in ("clk", "rst"):
                continue  # implicit sys clock domain
            if port.group:
                body.append(f"        # {port.group}")
            body.append(
                f"        self.{port.name} = {_signal(port.width)}"
                f"  # {port.direction}"
            )
        for item in module.body:
            if isinstance(item, Comment):
                body.append(f"        # {item.text}")
            elif isinstance(item, Wire):
                trailer = f"  # {item.comment}" if item.comment else ""
                body.append(
                    f"        self.{item.name} = "
                    f"{_signal(item.width)}{trailer}"
                )
            elif isinstance(item, Instance):
                if item.module in generated:
                    body.append(
                        f"        self.submodules.{item.name} = "
                        f"{class_name(item.module)}()"
                    )
                else:
                    params = "".join(
                        f", p_{k}={v}" for k, v in item.params
                    )
                    body.append(
                        f"        self.specials += Instance("
                        f'"{item.module}", name="{item.name}"{params})'
                    )
        if not body:
            body.append("        pass")
        lines.extend(body)
        return "\n".join(lines)

    def render_design(self, design: Design) -> str:
        lines: List[str] = []
        if design.banner:
            for line in design.banner:
                lines.append(f"# {_comment_text(line)}")
        else:
            lines.append(f"# OverGen tile netlist: {design.name}")
        lines.append(f"# {_comment_text(design.tile_banner)}")
        lines.append("#")
        lines.append("# migen/LiteX-flavoured structural netlist generated "
                     "by repro.rtl (backend: migen).")
        lines.append("# clk/rst are implicit (sys clock domain); external "
                     "blocks are Instance specials.")
        lines.append("")
        lines.append("from migen import Instance, Module, Signal")
        lines.append("")
        generated = {m.name for m in all_modules(design)}
        for module in all_modules(design):
            lines.append("")
            lines.append(self.render_module(module, generated=generated))
            lines.append("")
        top = design.top if design.top is not None else design.tile
        lines.append("")
        lines.append(f"TOP = {class_name(top.name)}")
        lines.append("")
        return "\n".join(lines)

    def text_inventory(self, text: str) -> Dict[str, int]:
        return {
            "modules": len(re.findall(r"(?m)^class \w+\(Module\):", text)),
            "instances": len(
                re.findall(
                    r"(?m)^        self\.(?:submodules\.\w+ = "
                    r"|specials \+= Instance\()",
                    text,
                )
            ),
        }
