"""Named RTL backend registry (mirrors the DSE strategy registry).

A backend renders the backend-neutral :class:`~repro.rtl.ir.Design` into
one concrete surface syntax.  Backends self-register with
:func:`register_backend` exactly the way DSE strategies register with
``repro.search.strategy.register``; :func:`get_backend` resolves a name
(``repro rtl --backend NAME``), and duplicate registrations raise instead
of silently shadowing an earlier backend.
"""

from __future__ import annotations

from typing import Dict, List, Type

from ..adg import ADG, SysADG
from .ir import Design, Module, build_design, build_tile_design


class Backend:
    """Base class: render the structural IR into one surface syntax."""

    #: Registry name; subclasses override.
    name = "base"
    #: Conventional file extension for emitted output.
    extension = ".v"

    def render_module(self, module: Module) -> str:
        raise NotImplementedError

    def render_design(self, design: Design) -> str:
        raise NotImplementedError

    # Convenience entry points shared by the CLI and the tests.
    def emit_system(self, sysadg: SysADG) -> str:
        """Render the full SoC for a sysADG."""
        return self.render_design(build_design(sysadg))

    def emit_tile(self, adg: ADG, tile_index: int = 0) -> str:
        """Render one tile (all node modules + the tile wrapper)."""
        return self.render_design(build_tile_design(adg, tile_index))

    def text_inventory(self, text: str) -> Dict[str, int]:
        """Count module declarations and instantiations in emitted text.

        Each backend knows its own syntax; the cross-backend parity suite
        checks that every backend reports the same inventory for the same
        design.
        """
        raise NotImplementedError


#: name -> backend class; populated by :func:`register_backend`.
BACKENDS: Dict[str, Type[Backend]] = {}


def register_backend(cls: Type[Backend]) -> Type[Backend]:
    """Class decorator: add a backend to the registry by its ``name``.

    Raises ``ValueError`` on duplicate names — a silently-shadowed
    backend would corrupt golden tests and resource-model training data.
    """
    if cls.name in BACKENDS and BACKENDS[cls.name] is not cls:
        raise ValueError(
            f"duplicate RTL backend {cls.name!r}: "
            f"{BACKENDS[cls.name].__name__} is already registered"
        )
    BACKENDS[cls.name] = cls
    return cls


def backend_names() -> List[str]:
    return sorted(BACKENDS)


def get_backend(name: str) -> Backend:
    """Instantiate a registered backend by name."""
    if name not in BACKENDS:
        raise KeyError(
            f"unknown RTL backend {name!r}; available: "
            + ", ".join(backend_names())
        )
    return BACKENDS[name]()
