"""Fabric routing: circuit-switched paths through the switch network.

Each directed ADG link carries at most one *value* (one DFG source node);
fan-out of the same value may share links (multicast through a switch is
free).  Intermediate hops must be switches — PEs and ports cannot forward
traffic.  Width is checked at every hop: a 512-bit value cannot squeeze
through a 64-bit switch.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..adg import ADG, NodeKind, ProcessingElement, Switch

Link = Tuple[int, int]


class RoutingState:
    """Tracks link occupancy during one scheduling pass."""

    def __init__(self, adg: ADG):
        self.adg = adg
        #: link -> dfg source-node id currently driving it.
        self.link_owner: Dict[Link, int] = {}

    def clone(self) -> "RoutingState":
        other = RoutingState(self.adg)
        other.link_owner = dict(self.link_owner)
        return other

    def link_free_for(self, link: Link, source: int) -> bool:
        owner = self.link_owner.get(link)
        return owner is None or owner == source

    def claim_path(self, path: Iterable[int], source: int) -> None:
        nodes = list(path)
        for link in zip(nodes, nodes[1:]):
            self.link_owner[link] = source

    def release_source(self, source: int) -> None:
        """Free every link owned by ``source`` (used by repair)."""
        self.link_owner = {
            link: owner
            for link, owner in self.link_owner.items()
            if owner != source
        }

    def release_links(self, links: Iterable[Link]) -> None:
        for link in links:
            self.link_owner.pop(link, None)


def _hop_allowed(adg: ADG, node_id: int, width_bits: int) -> bool:
    """May a route pass *through* this node (not as an endpoint)?"""
    node = adg.node(node_id)
    if node.kind is not NodeKind.SWITCH:
        return False
    return node.width_bits >= width_bits


def find_route(
    adg: ADG,
    state: RoutingState,
    src_hw: int,
    dst_hw: int,
    source_dfg: int,
    width_bits: int,
    max_hops: int = 24,
) -> Optional[Tuple[int, ...]]:
    """Shortest free path from ``src_hw`` to ``dst_hw`` for one value.

    BFS over links that are free (or already carry the same source value,
    enabling multicast reuse).  Interior nodes must be wide-enough switches.
    Returns the inclusive node path, or None.
    """
    if src_hw == dst_hw:
        return (src_hw,)
    queue = deque([(src_hw, (src_hw,))])
    seen: Set[int] = {src_hw}
    while queue:
        here, path = queue.popleft()
        if len(path) > max_hops:
            continue
        for nxt in sorted(adg.successors(here)):
            link = (here, nxt)
            if not state.link_free_for(link, source_dfg):
                continue
            if nxt == dst_hw:
                return path + (nxt,)
            if nxt in seen:
                continue
            if not _hop_allowed(adg, nxt, width_bits):
                continue
            seen.add(nxt)
            queue.append((nxt, path + (nxt,)))
    return None


def route_distance(
    adg: ADG,
    state: RoutingState,
    src_hw: int,
    dst_hw: int,
    source_dfg: int,
    width_bits: int,
) -> Optional[int]:
    """Hop count of the route :func:`find_route` would take (None if none)."""
    path = find_route(adg, state, src_hw, dst_hw, source_dfg, width_bits)
    return None if path is None else len(path) - 1
