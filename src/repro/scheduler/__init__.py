"""The spatial scheduler: mDFG -> ADG mapping with memory-aware binding."""

from .binder import bind_memory
from .placer import place_and_route, topo_compute_order
from .router import RoutingState, find_route, route_distance
from .schedule import (
    EdgeKey,
    Schedule,
    ScheduleAttempt,
    ScheduleError,
    ScheduleFailure,
)
from .spatial import (
    attempt_schedule,
    repair_schedule,
    revalidate_schedule,
    schedule_mdfg,
    schedule_workload,
    semantic_ok,
)

__all__ = [
    "EdgeKey",
    "RoutingState",
    "Schedule",
    "ScheduleAttempt",
    "ScheduleError",
    "ScheduleFailure",
    "attempt_schedule",
    "bind_memory",
    "find_route",
    "place_and_route",
    "repair_schedule",
    "revalidate_schedule",
    "route_distance",
    "schedule_mdfg",
    "schedule_workload",
    "semantic_ok",
    "topo_compute_order",
]
