"""Memory-side binding: array nodes -> engines, streams -> engines + ports.

This implements the mDFG scheduling constraints of Section IV-B:

1. a scratchpad must have remaining capacity for the array (double-buffered
   footprint already included by the compiler);
2. there must be a legal (point-to-point) route from the engine to the
   hardware port the stream uses;
3. the engine must support the stream's access pattern (indirect access
   needs indirect-capable hardware; recurrences must fit the recurrence
   engine's buffer).

Arrays are bound highest-memory-reuse first, and arrays whose reuse is
already captured at the port (stationary) yield the scratchpad to others —
the prioritization the paper motivates with the FIR example.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..adg import ADG, DmaEngine, NodeKind, SpadEngine
from ..dfg import (
    ArrayNode,
    ArrayPlacement,
    InputPortNode,
    MDFG,
    OutputPortNode,
    StreamKind,
    StreamNode,
)
from .schedule import Schedule, ScheduleError


def _required_port_bytes(mdfg: MDFG, stream: StreamNode) -> int:
    port = mdfg.node(stream.port)
    return port.width_bytes


def _stream_needs_padding(mdfg: MDFG, stream: StreamNode) -> bool:
    port = mdfg.node(stream.port)
    return isinstance(port, InputPortNode) and port.needs_padding


def effective_footprint(array: ArrayNode, mdfg: MDFG) -> float:
    """Scratchpad bytes the array needs on ONE tile.

    Partitionable arrays split across tiles along the parallel loop, so a
    tile only buffers its slice (the unified DSE reasons per tile).
    """
    if not array.partitionable:
        return float(array.footprint_bytes)
    share = max(1.0, min(16.0, mdfg.tile_parallelism))
    return array.footprint_bytes / share


def _spad_candidates(
    adg: ADG, array: ArrayNode, mdfg: MDFG, free: Dict[int, float]
) -> List[SpadEngine]:
    """Scratchpads with room (and indirect support when required)."""
    need = effective_footprint(array, mdfg)
    out = []
    for spad in adg.spads:
        if free[spad.node_id] < need:
            continue
        if array.indirect_target and not spad.indirect:
            continue
        out.append(spad)
    # Prefer the most free capacity (load balance across scratchpads).
    out.sort(key=lambda s: (-free[s.node_id], s.node_id))
    return out


def _array_priority(array: ArrayNode, mdfg: MDFG) -> float:
    """Scratchpad desirability: reuse not already captured at ports.

    Stationary port reuse shrinks the bandwidth an array actually demands,
    so such arrays gain less from scratchpad placement (Section IV-B).
    """
    stationary = 1.0
    for sid in array.streams:
        stream = mdfg.node(sid)
        stationary = max(stationary, float(stream.stationary_reuse))
    return array.memory_reuse / stationary


def bind_memory(mdfg: MDFG, adg: ADG, schedule: Schedule) -> None:
    """Bind arrays, streams, and DFG ports to engines and hardware ports.

    Raises:
        ScheduleError: when any constraint cannot be met (the variant is
            unschedulable on this ADG).
    """
    free_capacity = {s.node_id: float(s.capacity_bytes) for s in adg.spads}
    dmas = adg.dmas
    if not dmas and mdfg.memory_streams:
        raise ScheduleError("no DMA engine for memory streams", stage="binding")

    # ------------------------------------------------------------------
    # Array -> engine decisions (streams follow their array).
    # ------------------------------------------------------------------
    array_engine: Dict[str, int] = {}
    arrays = sorted(
        mdfg.arrays, key=lambda a: (-_array_priority(a, mdfg), a.array)
    )
    for array in arrays:
        target: Optional[int] = None
        if array.preferred is ArrayPlacement.SPAD:
            candidates = _spad_candidates(adg, array, mdfg, free_capacity)
            if candidates:
                target = candidates[0].node_id
                free_capacity[target] -= effective_footprint(array, mdfg)
        if target is None:
            if not dmas:
                raise ScheduleError(f"array {array.array}: no engine available", stage="binding")
            target = dmas[0].node_id
            if array.indirect_target and not dmas[0].indirect:
                raise ScheduleError(
                    f"array {array.array}: indirect access unsupported by DMA",
                    stage="binding",
                )
        array_engine[array.array] = target
        schedule.placement[array.node_id] = target

    # ------------------------------------------------------------------
    # Stream -> engine (+ auxiliary engine constraints).
    # ------------------------------------------------------------------
    stream_engine: Dict[int, int] = {}
    for stream in mdfg.streams:
        if stream.kind is StreamKind.RECURRENCE:
            recs = adg.of_kind(NodeKind.RECURRENCE)
            fitting = [
                r
                for r in recs
                if stream.recurrence_depth * stream.dtype.bytes
                <= r.buffer_bytes
            ]
            if not fitting:
                raise ScheduleError(
                    f"recurrence of depth {stream.recurrence_depth} does not "
                    f"fit any recurrence engine",
                    stage="binding",
                )
            stream_engine[stream.node_id] = fitting[0].node_id
        elif stream.kind is StreamKind.GENERATE:
            gens = adg.of_kind(NodeKind.GENERATE)
            if not gens:
                raise ScheduleError("no generate engine available", stage="binding")
            stream_engine[stream.node_id] = gens[0].node_id
        elif stream.kind is StreamKind.REGISTER:
            regs = adg.of_kind(NodeKind.REGISTER)
            if not regs:
                raise ScheduleError("no register engine available", stage="binding")
            stream_engine[stream.node_id] = regs[0].node_id
        else:
            engine_id = array_engine[stream.array]
            engine = adg.node(engine_id)
            if stream.indirect:
                if isinstance(engine, SpadEngine) and not engine.indirect:
                    engine_id = dmas[0].node_id
                    engine = dmas[0]
                if isinstance(engine, DmaEngine) and not engine.indirect:
                    raise ScheduleError(
                        f"indirect stream on {stream.array}: no indirect-"
                        f"capable engine",
                        stage="binding",
                    )
            stream_engine[stream.node_id] = engine_id

    # ------------------------------------------------------------------
    # Stream -> hardware port, respecting engine->port reachability.
    # Widest streams first (hardest to place).
    # ------------------------------------------------------------------
    used_ports: Set[int] = set()
    order = sorted(
        mdfg.streams,
        key=lambda s: (-_required_port_bytes(mdfg, s), s.node_id),
    )
    for stream in order:
        engine_id = stream_engine[stream.node_id]
        hw_port = _choose_port(mdfg, adg, stream, engine_id, used_ports)
        if hw_port is None and stream.is_memory:
            # Fallback: rebind the whole array to DMA and retry (a spad may
            # simply not reach any suitable port on this topology).
            fallback = dmas[0].node_id if dmas else None
            if fallback is not None and engine_id != fallback:
                engine_id = fallback
                stream_engine[stream.node_id] = engine_id
                schedule.placement[
                    _array_node_id(mdfg, stream.array)
                ] = engine_id
                hw_port = _choose_port(mdfg, adg, stream, engine_id, used_ports)
        if hw_port is None:
            raise ScheduleError(
                f"stream {stream.node_id} ({stream.kind}, "
                f"{_required_port_bytes(mdfg, stream)}B) has no reachable port",
                stage="binding",
            )
        used_ports.add(hw_port)
        schedule.placement[stream.node_id] = engine_id
        schedule.placement[stream.port] = hw_port


def _array_node_id(mdfg: MDFG, array: str) -> int:
    for node in mdfg.arrays:
        if node.array == array:
            return node.node_id
    raise ScheduleError(f"unknown array {array}", stage="binding")


def _choose_port(
    mdfg: MDFG,
    adg: ADG,
    stream: StreamNode,
    engine_id: int,
    used: Set[int],
) -> Optional[int]:
    """Smallest adequate unused hardware port reachable from the engine."""
    needed = _required_port_bytes(mdfg, stream)
    dfg_port = mdfg.node(stream.port)
    to_fabric = isinstance(dfg_port, InputPortNode)
    if to_fabric:
        candidates = [
            p
            for p in adg.in_ports
            if p.node_id not in used
            and p.width_bytes >= needed
            and adg.has_link(engine_id, p.node_id)
            and (not _stream_needs_padding(mdfg, stream) or p.supports_padding)
        ]
    else:
        candidates = [
            p
            for p in adg.out_ports
            if p.node_id not in used
            and p.width_bytes >= needed
            and adg.has_link(p.node_id, engine_id)
        ]
    if not candidates:
        return None
    candidates.sort(key=lambda p: (p.width_bytes, p.node_id))
    return candidates[0].node_id
