"""Schedule data structures: the result of mapping an mDFG onto an ADG.

A schedule records, for every mDFG entity, which hardware it occupies:

* compute nodes -> processing elements (dedicated: one instruction per PE),
* DFG ports -> hardware vector ports,
* streams and array nodes -> stream engines,
* fabric value edges -> link-level routes through switches.

Schedules are consulted by the DSE both to evaluate candidates (via the
performance model) and to *preserve* mappings across hardware mutations
(Section V-B); :meth:`Schedule.hardware_in_use` and
:meth:`Schedule.routes_through` support those transformations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..adg import ADG
from ..dfg import MDFG
from ..model.perf import MemoryBinding, PerfEstimate

#: A routed fabric edge: (src dfg node, dst dfg node, operand slot).
EdgeKey = Tuple[int, int, int]


@dataclass
class Schedule:
    """A complete mapping of one mDFG variant onto one tile ADG."""

    mdfg: MDFG
    adg_version: int
    #: dfg node id -> adg node id (compute->PE, dfg port->hw port,
    #: stream/array -> engine).
    placement: Dict[int, int] = field(default_factory=dict)
    #: fabric edge -> path of adg node ids (inclusive of endpoints).
    routes: Dict[EdgeKey, Tuple[int, ...]] = field(default_factory=dict)
    #: per-PE maximum operand-arrival skew (needs delay FIFOs this deep).
    delay_fifo_needed: Dict[int, int] = field(default_factory=dict)
    estimate: Optional[PerfEstimate] = None

    # ------------------------------------------------------------------
    def clone(self) -> "Schedule":
        """Deep-enough copy: mutating the clone's maps leaves this intact."""
        return Schedule(
            mdfg=self.mdfg,
            adg_version=self.adg_version,
            placement=dict(self.placement),
            routes=dict(self.routes),
            delay_fifo_needed=dict(self.delay_fifo_needed),
            estimate=self.estimate,
        )

    def binding(self) -> MemoryBinding:
        """Memory binding (stream -> engine) view for the perf model."""
        stream_ids = {s.node_id for s in self.mdfg.streams}
        return MemoryBinding(
            {nid: self.placement[nid] for nid in stream_ids if nid in self.placement}
        )

    def hardware_in_use(self) -> Set[int]:
        """Every ADG node this schedule occupies or routes through."""
        used: Set[int] = set(self.placement.values())
        for path in self.routes.values():
            used.update(path)
        return used

    def links_in_use(self) -> Set[Tuple[int, int]]:
        links: Set[Tuple[int, int]] = set()
        for path in self.routes.values():
            links.update(zip(path, path[1:]))
        return links

    def routes_through(self, adg_node: int) -> List[EdgeKey]:
        """Routed edges whose path passes through ``adg_node``."""
        return [
            key
            for key, path in self.routes.items()
            if adg_node in path
        ]

    def pe_of(self, compute_id: int) -> Optional[int]:
        return self.placement.get(compute_id)

    # ------------------------------------------------------------------
    def is_valid_for(self, adg: ADG) -> bool:
        """Cheap validity check against (a possibly mutated) ``adg``.

        Verifies that every placed node and routed link still exists.
        Capability/width/capacity checks are the scheduler's job; this is
        the fast path used by schedule repair to find broken pieces.
        """
        for hw in self.placement.values():
            if not adg.has_node(hw):
                return False
        for path in self.routes.values():
            for src, dst in zip(path, path[1:]):
                if not adg.has_link(src, dst):
                    return False
        return True

    def broken_pieces(self, adg: ADG) -> Tuple[Set[int], Set[EdgeKey]]:
        """(dfg nodes with missing hardware, edges with missing links)."""
        bad_nodes = {
            dfg_id
            for dfg_id, hw in self.placement.items()
            if not adg.has_node(hw)
        }
        bad_edges = set()
        for key, path in self.routes.items():
            if any(not adg.has_node(n) for n in path) or any(
                not adg.has_link(s, d) for s, d in zip(path, path[1:])
            ):
                bad_edges.add(key)
        return bad_nodes, bad_edges

    def summary(self) -> str:
        est = f" ipc={self.estimate.ipc:.1f}" if self.estimate else ""
        return (
            f"Schedule({self.mdfg.workload}/{self.mdfg.variant}: "
            f"{len(self.placement)} placed, {len(self.routes)} routes{est})"
        )


class ScheduleError(Exception):
    """Raised internally when a mapping step cannot be satisfied.

    ``stage`` names the mapping phase that gave up — ``"binding"`` (memory
    streams/arrays to engines), ``"placement"`` (compute to PEs),
    ``"routing"`` (fabric values through switches), or ``"skew"`` (operand
    delay-FIFO depth).  Callers that want the failure as data instead of
    control flow use :func:`repro.scheduler.attempt_schedule`, which
    converts this exception into a :class:`ScheduleFailure`.
    """

    def __init__(self, message: str, stage: str = "schedule") -> None:
        super().__init__(message)
        self.stage = stage


@dataclass(frozen=True)
class ScheduleFailure:
    """Why a variant did not map: a structured, raise-free diagnosis."""

    stage: str                   # binding | placement | routing | skew | schedule
    reason: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.stage}: {self.reason}"


@dataclass
class ScheduleAttempt:
    """Result of trying to map one mDFG variant.

    Exactly one of ``schedule`` / ``failure`` is set.
    """

    schedule: Optional[Schedule] = None
    failure: Optional[ScheduleFailure] = None

    @property
    def ok(self) -> bool:
        return self.schedule is not None
