"""Compute placement and fabric routing.

Instructions place onto dedicated PEs (one instruction each) in topological
order; each candidate PE is scored by the routed distance from the already-
placed operand producers, and the best candidate whose operand routes all
succeed is committed.  After placement, result edges route to the bound
output ports, and per-PE operand arrival skew is checked against the PE's
delay-FIFO depth (pipeline-balance requirement, Section V-B).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..adg import ADG, NodeKind, ProcessingElement
from ..dfg import (
    ComputeNode,
    InputPortNode,
    MDFG,
    OutputPortNode,
)
from .router import RoutingState, find_route
from .schedule import EdgeKey, Schedule, ScheduleError


def _value_width_bits(mdfg: MDFG, dfg_node: int) -> int:
    node = mdfg.node(dfg_node)
    if isinstance(node, ComputeNode):
        return node.width_bits
    if isinstance(node, InputPortNode):
        return node.width_bytes * 8
    if isinstance(node, OutputPortNode):
        return node.width_bytes * 8
    raise ScheduleError(
        f"node {dfg_node} does not carry a fabric value", stage="placement"
    )


def topo_compute_order(mdfg: MDFG) -> List[ComputeNode]:
    """Compute nodes in dependency order (operands first)."""
    nodes = {n.node_id: n for n in mdfg.compute_nodes}
    order: List[ComputeNode] = []
    visited: Set[int] = set()

    def visit(nid: int) -> None:
        if nid in visited or nid not in nodes:
            return
        visited.add(nid)
        for operand in nodes[nid].operands:
            visit(operand)
        order.append(nodes[nid])

    for nid in sorted(nodes):
        visit(nid)
    return order


def _fabric_in_edges(mdfg: MDFG, node_id: int) -> List[EdgeKey]:
    """Incoming fabric edges of a compute/output-port node."""
    keys = []
    for edge in mdfg.fabric_edges():
        if edge.dst == node_id:
            keys.append((edge.src, edge.dst, edge.slot))
    return keys


def place_and_route(
    mdfg: MDFG,
    adg: ADG,
    schedule: Schedule,
    state: RoutingState,
    pinned: Optional[Dict[int, int]] = None,
) -> None:
    """Place all compute nodes and route every fabric edge.

    ``pinned`` optionally fixes some compute placements (schedule repair
    keeps surviving placements and re-places only the broken ones).

    Raises:
        ScheduleError: if any instruction or route cannot be mapped.
    """
    pinned = pinned or {}
    used_pes: Set[int] = set(pinned.values())
    used_pes.update(
        hw
        for dfg, hw in schedule.placement.items()
        if isinstance(mdfg.node(dfg), ComputeNode)
    )

    for compute in topo_compute_order(mdfg):
        if compute.node_id in schedule.placement:
            continue
        if compute.node_id in pinned:
            _commit_placement(
                mdfg, adg, schedule, state, compute, pinned[compute.node_id]
            )
            used_pes.add(pinned[compute.node_id])
            continue
        candidates = _candidate_pes(mdfg, adg, compute, used_pes)
        if not candidates:
            raise ScheduleError(
                f"no PE supports {compute.op} x{compute.lanes} "
                f"{compute.dtype.name}",
                stage="placement",
            )
        placed = False
        for pe_id, _score in _rank_candidates(
            mdfg, adg, schedule, state, compute, candidates
        ):
            if _try_commit(mdfg, adg, schedule, state, compute, pe_id):
                used_pes.add(pe_id)
                placed = True
                break
        if not placed:
            raise ScheduleError(
                f"could not route operands of compute {compute.node_id} "
                f"({compute.op})",
                stage="routing",
            )

    _route_output_edges(mdfg, adg, schedule, state)
    _check_delay_skew(mdfg, adg, schedule)


def _candidate_pes(
    mdfg: MDFG, adg: ADG, compute: ComputeNode, used: Set[int]
) -> List[ProcessingElement]:
    return [
        pe
        for pe in adg.pes
        if pe.node_id not in used
        and pe.supports(compute.op, compute.dtype, compute.lanes)
    ]


def _rank_candidates(mdfg, adg, schedule, state, compute, candidates):
    """Candidates sorted by total route distance from placed sources."""
    scored = []
    sources = _operand_sources(mdfg, schedule, compute)
    for pe in candidates:
        total = 0
        feasible = True
        for src_hw, src_dfg, width in sources:
            path = find_route(adg, state, src_hw, pe.node_id, src_dfg, width)
            if path is None:
                feasible = False
                break
            total += len(path) - 1
        if feasible:
            scored.append((pe.node_id, total))
    scored.sort(key=lambda item: (item[1], item[0]))
    return scored


def _operand_sources(mdfg, schedule, compute) -> List[Tuple[int, int, int]]:
    """(src hardware, src dfg node, width bits) per routed operand."""
    out = []
    for edge in _fabric_in_edges(mdfg, compute.node_id):
        src_dfg = edge[0]
        src_hw = schedule.placement.get(src_dfg)
        if src_hw is None:
            raise ScheduleError(
                f"operand {src_dfg} of compute {compute.node_id} is unplaced",
                stage="placement",
            )
        out.append((src_hw, src_dfg, _value_width_bits(mdfg, src_dfg)))
    return out


def _try_commit(mdfg, adg, schedule, state, compute, pe_id) -> bool:
    """Route all operand edges to ``pe_id``; commit on success."""
    trial = state.clone()
    routes: Dict[EdgeKey, Tuple[int, ...]] = {}
    for edge in _fabric_in_edges(mdfg, compute.node_id):
        src_dfg = edge[0]
        src_hw = schedule.placement[src_dfg]
        width = _value_width_bits(mdfg, src_dfg)
        path = find_route(adg, trial, src_hw, pe_id, src_dfg, width)
        if path is None:
            return False
        trial.claim_path(path, src_dfg)
        routes[edge] = path
    state.link_owner = trial.link_owner
    schedule.placement[compute.node_id] = pe_id
    schedule.routes.update(routes)
    return True


def _commit_placement(mdfg, adg, schedule, state, compute, pe_id) -> None:
    if not _try_commit(mdfg, adg, schedule, state, compute, pe_id):
        raise ScheduleError(
            f"pinned placement of compute {compute.node_id} on pe{pe_id} "
            f"cannot be routed",
            stage="routing",
        )


def _route_output_edges(mdfg, adg, schedule, state) -> None:
    """Route fabric edges terminating at output ports (results + passthrough).

    If the port chosen by the memory binder turns out to be unreachable
    from the producer (link congestion), the edge is re-bound to another
    compatible unused output port before giving up.
    """
    for node in mdfg.output_ports:
        hw_port = schedule.placement.get(node.node_id)
        if hw_port is None:
            raise ScheduleError(
                f"output port {node.node_id} is unbound", stage="placement"
            )
        for edge in _fabric_in_edges(mdfg, node.node_id):
            if edge in schedule.routes:
                continue
            src_dfg = edge[0]
            src_hw = schedule.placement.get(src_dfg)
            if src_hw is None:
                raise ScheduleError(
                    f"producer {src_dfg} unplaced", stage="placement"
                )
            width = _value_width_bits(mdfg, src_dfg)
            path = find_route(adg, state, src_hw, hw_port, src_dfg, width)
            if path is None:
                path = _rebind_output_port(
                    mdfg, adg, schedule, state, node, src_dfg, src_hw, width
                )
                if path is None:
                    raise ScheduleError(
                        f"no route from {src_hw} to output port {hw_port}",
                        stage="routing",
                    )
                hw_port = path[-1]
            state.claim_path(path, src_dfg)
            schedule.routes[edge] = path


def _rebind_output_port(
    mdfg, adg, schedule, state, port_node, src_dfg, src_hw, width
):
    """Try alternative hardware output ports for an unroutable result edge."""
    from ..dfg import StreamKind

    streams = [s for s in mdfg.streams if s.port == port_node.node_id]
    used = {
        hw
        for dfg, hw in schedule.placement.items()
        if isinstance(mdfg.node(dfg), OutputPortNode)
    }
    for candidate in adg.out_ports:
        if candidate.node_id in used:
            continue
        if candidate.width_bytes < port_node.width_bytes:
            continue
        # The port must still reach every engine its streams bind to.
        reachable = all(
            adg.has_link(candidate.node_id, schedule.placement[s.node_id])
            for s in streams
            if s.node_id in schedule.placement
        )
        if not reachable:
            continue
        path = find_route(
            adg, state, src_hw, candidate.node_id, src_dfg, width
        )
        if path is not None:
            schedule.placement[port_node.node_id] = candidate.node_id
            return path
    return None


def _check_delay_skew(mdfg, adg, schedule) -> None:
    """Operand arrival skew per PE must fit its delay FIFOs."""
    for compute in mdfg.compute_nodes:
        pe_id = schedule.placement.get(compute.node_id)
        if pe_id is None:
            continue
        lengths = []
        for edge in _fabric_in_edges(mdfg, compute.node_id):
            path = schedule.routes.get(edge)
            if path is not None:
                lengths.append(len(path) - 1)
        if len(lengths) >= 2:
            skew = max(lengths) - min(lengths)
            schedule.delay_fifo_needed[pe_id] = max(
                schedule.delay_fifo_needed.get(pe_id, 0), skew
            )
            pe = adg.node(pe_id)
            if skew > pe.max_delay_fifo:
                raise ScheduleError(
                    f"operand skew {skew} exceeds pe{pe_id} delay FIFO "
                    f"depth {pe.max_delay_fifo}",
                    stage="skew",
                )
