"""Top-level spatial scheduler: full scheduling, repair, and relaxation.

`schedule_mdfg` maps one variant; `schedule_workload` walks a variant
family most-aggressive-first and returns the best-performing variant that
maps ("relax DFG complexity", Fig. 3).  `repair_schedule` preserves as much
of an existing schedule as possible after a hardware mutation (the cheap
path the DSE takes every iteration — Section V-A).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..adg import ADG, NodeKind, ProcessingElement, SystemParams
from ..compiler import VariantSet
from ..dfg import ComputeNode, InputPortNode, MDFG, OutputPortNode, StreamNode
from ..model.perf import PerfEstimate, estimate_ipc
from ..profile.tracer import span
from .binder import bind_memory
from .placer import place_and_route
from .router import RoutingState
from .schedule import Schedule, ScheduleAttempt, ScheduleError, ScheduleFailure


def attempt_schedule(
    mdfg: MDFG,
    adg: ADG,
    params: Optional[SystemParams] = None,
) -> ScheduleAttempt:
    """Map ``mdfg`` onto ``adg``, reporting failure as data (never raises).

    On an infeasible mapping the returned attempt carries a
    :class:`ScheduleFailure` naming the stage that gave up (binding /
    placement / routing / skew) and the constraint it hit — what the DSE
    logs and the over-subscription tests assert on.
    """
    schedule = Schedule(mdfg=mdfg, adg_version=adg.version)
    state = RoutingState(adg)
    try:
        with span("scheduler.bind", workload=mdfg.workload, variant=mdfg.variant):
            bind_memory(mdfg, adg, schedule)
        with span(
            "scheduler.place_route", workload=mdfg.workload, variant=mdfg.variant
        ):
            place_and_route(mdfg, adg, schedule, state)
    except ScheduleError as exc:
        return ScheduleAttempt(
            failure=ScheduleFailure(stage=exc.stage, reason=str(exc))
        )
    if params is not None:
        schedule.estimate = estimate_ipc(mdfg, schedule.binding(), adg, params)
    return ScheduleAttempt(schedule=schedule)


def schedule_mdfg(
    mdfg: MDFG,
    adg: ADG,
    params: Optional[SystemParams] = None,
) -> Optional[Schedule]:
    """Map ``mdfg`` onto ``adg``; returns None when unschedulable."""
    return attempt_schedule(mdfg, adg, params).schedule


def schedule_workload(
    variants: VariantSet,
    adg: ADG,
    params: SystemParams,
) -> Optional[Schedule]:
    """Best-performing schedulable variant of a workload (None if none).

    Every variant is tried; the one with the highest estimated IPC wins.
    This is the "relax DFG complexity" loop: aggressive variants that fail
    to map simply lose to the less aggressive ones that succeed.
    """
    best: Optional[Schedule] = None
    for mdfg in variants.variants:
        schedule = schedule_mdfg(mdfg, adg, params)
        if schedule is None:
            continue
        assert schedule.estimate is not None
        if best is None or schedule.estimate.ipc > best.estimate.ipc:
            best = schedule
    return best


# ----------------------------------------------------------------------
# Schedule repair (Section V-A): keep what survived the ADG mutation.
# ----------------------------------------------------------------------
def semantic_ok(mdfg: MDFG, adg: ADG, schedule: Schedule) -> bool:
    """Do surviving placements still satisfy capability/width constraints?

    Structural existence is checked by ``Schedule.is_valid_for``; this
    catches parameter changes (pruned capabilities, narrowed ports, shrunk
    scratchpads) that leave the node present but inadequate.
    """
    for dfg_id, hw_id in schedule.placement.items():
        if not adg.has_node(hw_id):
            return False
        node = mdfg.node(dfg_id)
        hw = adg.node(hw_id)
        if isinstance(node, ComputeNode):
            if not isinstance(hw, ProcessingElement):
                return False
            if not hw.supports(node.op, node.dtype, node.lanes):
                return False
        elif isinstance(node, (InputPortNode, OutputPortNode)):
            if getattr(hw, "width_bytes", 0) < node.width_bytes:
                return False
    return True


def revalidate_schedule(
    schedule: Schedule,
    adg: ADG,
    params: SystemParams,
) -> Optional[Schedule]:
    """The schedule-preserving fast path: no repair, no re-derivation.

    When ``schedule`` survives the ADG mutation both structurally
    (:meth:`Schedule.is_valid_for`) and semantically (:func:`semantic_ok`),
    stamp the new ADG version, refresh the performance estimate in place,
    and return the *same* object — no dict copies, no routing, no
    placement.  Returns ``None`` when the schedule did not survive and
    the caller must pay for :func:`repair_schedule`.
    """
    with span(
        "scheduler.revalidate",
        workload=schedule.mdfg.workload,
        variant=schedule.mdfg.variant,
    ):
        if not schedule.is_valid_for(adg) or not semantic_ok(
            schedule.mdfg, adg, schedule
        ):
            return None
        schedule.adg_version = adg.version
        schedule.estimate = estimate_ipc(
            schedule.mdfg, schedule.binding(), adg, params
        )
        return schedule


def repair_schedule(
    schedule: Schedule,
    adg: ADG,
    params: SystemParams,
) -> Optional[Schedule]:
    """Re-validate ``schedule`` against a mutated ``adg``; repair if needed.

    Strategy: if the schedule survived intact, stamp and return it.  If only
    routes broke, keep every placement and re-route.  If placements broke,
    fall back to a full reschedule of the same variant.
    """
    with span(
        "scheduler.repair",
        workload=schedule.mdfg.workload,
        variant=schedule.mdfg.variant,
    ):
        return _repair_schedule(schedule, adg, params)


def _repair_schedule(
    schedule: Schedule,
    adg: ADG,
    params: SystemParams,
) -> Optional[Schedule]:
    mdfg = schedule.mdfg
    if schedule.is_valid_for(adg) and semantic_ok(mdfg, adg, schedule):
        refreshed = Schedule(
            mdfg=mdfg,
            adg_version=adg.version,
            placement=dict(schedule.placement),
            routes=dict(schedule.routes),
            delay_fifo_needed=dict(schedule.delay_fifo_needed),
        )
        refreshed.estimate = estimate_ipc(
            mdfg, refreshed.binding(), adg, params
        )
        return refreshed

    bad_nodes, bad_edges = schedule.broken_pieces(adg)
    if not bad_nodes and semantic_ok(mdfg, adg, schedule):
        repaired = _reroute_only(schedule, adg, bad_edges)
        if repaired is not None:
            repaired.estimate = estimate_ipc(
                mdfg, repaired.binding(), adg, params
            )
            return repaired
    return schedule_mdfg(mdfg, adg, params)


def _reroute_only(
    schedule: Schedule, adg: ADG, bad_edges
) -> Optional[Schedule]:
    """Keep all placements; recompute just the broken routes."""
    from .router import find_route

    repaired = Schedule(
        mdfg=schedule.mdfg,
        adg_version=adg.version,
        placement=dict(schedule.placement),
        routes={
            key: path
            for key, path in schedule.routes.items()
            if key not in bad_edges
        },
        delay_fifo_needed={},
    )
    state = RoutingState(adg)
    for key, path in repaired.routes.items():
        state.claim_path(path, key[0])
    mdfg = schedule.mdfg
    from .placer import _value_width_bits

    for key in sorted(bad_edges):
        src_dfg, dst_dfg, _slot = key
        src_hw = repaired.placement.get(src_dfg)
        dst_hw = repaired.placement.get(dst_dfg)
        if src_hw is None or dst_hw is None:
            return None
        width = _value_width_bits(mdfg, src_dfg)
        path = find_route(adg, state, src_hw, dst_hw, src_dfg, width)
        if path is None:
            return None
        state.claim_path(path, src_dfg)
        repaired.routes[key] = path
    try:
        from .placer import _check_delay_skew

        _check_delay_skew(mdfg, adg, repaired)
    except ScheduleError:
        return None
    return repaired
