"""Setup shim for environments without the ``wheel`` package.

``pip install -e .`` uses PEP 660 editable wheels when possible; this shim
lets legacy ``setup.py develop`` installs work in offline environments.
"""

from setuptools import setup

setup()
